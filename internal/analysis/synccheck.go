package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// SyncCheck flags reads of a symmetric object that can observe an incomplete
// one-sided write: a shmem Put/IPut/atomic update followed on some path by a
// Get (or other read) of the same symmetric object with no intervening
// Quiet/Fence/Barrier or collective. This is the contract of paper §IV-B —
// OpenSHMEM puts complete locally; remote visibility requires an explicit
// completion operation, which the CAF translation inserts and hand-written
// hybrid code must not forget.
//
// It additionally models the OpenSHMEM 1.3 *nonblocking* contract
// (shmem_put_nbi / shmem_get_nbi):
//
//   - Fence orders blocking puts but does NOT complete nonblocking operations;
//     only Quiet (or a barrier/collective, which quiets internally) does. A
//     read after Fence that races a PutMemNBI is still reported.
//   - The source buffer of a nonblocking put is owned by the runtime until
//     Quiet. Any write to it (assignment, ++/--, append/copy into it) before
//     the next completion point is reported as source-buffer reuse.
//
// The per-function walk is keyed by the symmetric-handle expression (for
// remote completion) or the source-buffer base expression (for NBI pinning).
// Module-local calls resolve through the interprocedural effect summaries
// (summary.go): a helper's pending creations are rebound to the caller's
// argument expressions, its completions clear the caller's state, and its
// reads of symmetric parameters report at the call site. Calls that still
// cannot be resolved (function values, non-module code, non-convergent
// recursion) conservatively count as completion points, so findings remain
// high-confidence bugs.
var SyncCheck = &Analyzer{
	Name: "synccheck",
	Doc:  "reads of symmetric data racing un-quieted one-sided writes",
	Run:  runSyncCheck,
}

// pendingWrites maps a key (symmetric-object or buffer expression) to the
// position of the oldest outstanding operation on the current path.
type pendingWrites map[string]token.Pos

func (s pendingWrites) clone() pendingWrites {
	out := make(pendingWrites, len(s))
	for k, v := range s {
		out[k] = v
	}
	return out
}

func (s pendingWrites) union(o pendingWrites) {
	for k, v := range o {
		if old, ok := s[k]; !ok || v < old {
			s[k] = v
		}
	}
}

// syncState is the per-path dataflow state. The three maps have different
// completion rules, mirroring the memory model:
//
//	writes — blocking one-sided writes; completed by Quiet OR Fence (for the
//	         purposes of this checker: any completion point).
//	nbi    — nonblocking one-sided writes; completed by Quiet but NOT Fence.
//	nbiSrc — local source buffers pinned by outstanding nonblocking puts,
//	         keyed by buffer base expression; released at Quiet.
type syncState struct {
	writes pendingWrites
	nbi    pendingWrites
	nbiSrc pendingWrites
}

func newSyncState() syncState {
	return syncState{writes: pendingWrites{}, nbi: pendingWrites{}, nbiSrc: pendingWrites{}}
}

func (s syncState) clone() syncState {
	return syncState{writes: s.writes.clone(), nbi: s.nbi.clone(), nbiSrc: s.nbiSrc.clone()}
}

func (s syncState) union(o syncState) {
	s.writes.union(o.writes)
	s.nbi.union(o.nbi)
	s.nbiSrc.union(o.nbiSrc)
}

// clearAll models an opaque completion point (an indirect call or module
// helper that may quiet anything, contexts included).
func (s syncState) clearAll() {
	clear(s.writes)
	clear(s.nbi)
	clear(s.nbiSrc)
}

// clearFence models Fence: blocking puts are ordered, nonblocking operations
// remain outstanding and their source buffers stay pinned.
func (s syncState) clearFence() {
	clear(s.writes)
}

// ctxKeyPrefix namespaces an entry under a communication context, keyed by the
// receiver expression: "ctx:<recv>|<sym-or-buffer>". The 1.4 contract is that
// PE-level Quiet/Barrier never complete context ops and a context's Quiet
// never completes anyone else's, so the two key spaces clear independently.
const ctxKeyPrefix = "ctx:"

func ctxKey(recvKey, key string) string { return ctxKeyPrefix + recvKey + "|" + key }

func clearDefaultEntries(m pendingWrites) {
	for k := range m {
		if !strings.HasPrefix(k, ctxKeyPrefix) {
			delete(m, k)
		}
	}
}

func clearPrefixEntries(m pendingWrites, prefix string) {
	for k := range m {
		if strings.HasPrefix(k, prefix) {
			delete(m, k)
		}
	}
}

// clearDefault models a PE-level completion point (Quiet, barrier,
// collective): everything on the default context completes, context-scoped
// operations stay outstanding and their source buffers stay pinned.
func (s syncState) clearDefault() {
	clearDefaultEntries(s.writes)
	clearDefaultEntries(s.nbi)
	clearDefaultEntries(s.nbiSrc)
}

// clearCtx models ctx.Quiet / ctx.Destroy for the context held in recvKey:
// only that context's entries complete.
func (s syncState) clearCtx(recvKey string) {
	prefix := ctxKey(recvKey, "")
	clearPrefixEntries(s.writes, prefix)
	clearPrefixEntries(s.nbi, prefix)
	clearPrefixEntries(s.nbiSrc, prefix)
}

// clearAnyCtx models a callee that quiets a context the caller cannot
// identify: every context-scoped entry may have completed.
func (s syncState) clearAnyCtx() {
	clearPrefixEntries(s.writes, ctxKeyPrefix)
	clearPrefixEntries(s.nbi, ctxKeyPrefix)
	clearPrefixEntries(s.nbiSrc, ctxKeyPrefix)
}

func runSyncCheck(pass *Pass) {
	pass.funcBodies(func(name string, body *ast.BlockStmt) {
		w := &syncWalker{pass: pass}
		w.walkStmt(body, newSyncState())
	})
}

// syncWalker walks one function body. In diagnose mode (sum == nil) it
// reports findings for the package under analysis. In summarize mode
// (sum != nil, driven by summary.go) diagnostics are discarded and the walker
// instead records the function's effects: paramIdx maps seeded marker keys to
// virtual parameter indices, ctxPut/ctxPin map context-scoped pending keys
// back to parameter pairs, and defc accumulates deferred completion points
// that run on every return path.
type syncWalker struct {
	pass     *Pass
	sum      *Summary
	paramIdx map[string]int
	ctxPut   map[string]ctxEffect
	ctxPin   map[string]ctxEffect
	defc     deferComp
}

// deferComp is the set of completion points among a function's deferred
// calls; they execute before the caller resumes, on every return path.
type deferComp struct {
	all, def, fence, anyCtx bool
	ctxKeys                 []string
}

func (d *deferComp) apply(st syncState) {
	if d.all {
		st.clearAll()
		return
	}
	if d.def {
		st.clearDefault()
	}
	if d.fence {
		st.clearFence()
	}
	for _, k := range d.ctxKeys {
		st.clearCtx(k)
	}
	if d.anyCtx {
		st.clearAnyCtx()
	}
}

// shmem.PE methods that issue one-sided writes needing Quiet for remote
// completion (or whose update bypasses the ordered put stream, for AMOs),
// with the index of their Sym argument.
var shmemWriteMethods = map[string]int{
	"PutMem": 1, "IPutMem": 1, "PutMemV": 1,
	"Swap": 1, "CompareSwap": 1, "FetchAdd": 1, "FetchInc": 1, "Add": 1,
	"FetchAnd": 1, "FetchOr": 1, "FetchXor": 1, "AtomicSet": 1,
}

// Package-level generic write functions, with the index of their Sym argument.
var shmemWriteFuncs = map[string]int{"Put": 2, "P": 2, "IPut": 2}

// Nonblocking write methods: Sym argument index and source-buffer argument
// index. They populate both the nbi map (remote completion) and nbiSrc
// (buffer pinning).
var shmemNBIWriteMethods = map[string][2]int{
	"PutMemNBI":  {1, 3},
	"PutMemVNBI": {1, 4},
	"IPutMemNBI": {1, 5},
}

var shmemNBIWriteFuncs = map[string][2]int{"PutNBI": {2, 4}}

// Nonblocking reads: the remote Sym they read (checked against outstanding
// writes like any read). Their *destination* buffer is undefined until Quiet,
// but local-buffer read tracking is out of scope for a handle-keyed checker.
var shmemNBIReadMethods = map[string]int{"GetMemNBI": 1, "IGetMemNBI": 1}

var shmemNBIReadFuncs = map[string]int{"GetNBI": 2}

// shmem.PE methods that read symmetric data, with their Sym argument index.
var shmemReadMethods = map[string]int{
	"GetMem": 1, "IGetMem": 1, "GetMemV": 1, "AtomicFetch": 1, "Ptr": 0,
}

var shmemReadFuncs = map[string]int{"Get": 2, "G": 2, "IGet": 2}

// shmem.PE methods that complete ALL outstanding default-context operations,
// nonblocking included — but never context-scoped ones (OpenSHMEM 1.4: a
// context is completed only by its own Quiet). Fence is deliberately absent:
// per the OpenSHMEM memory model it orders the put stream but does not
// complete put_nbi/get_nbi. QuietTarget completes one destination; the checker
// has no per-target precision, so it conservatively counts as a full quiet
// (missed bugs toward other targets, never false positives).
var shmemSyncMethods = map[string]bool{
	"Quiet": true, "QuietStat": true, "Barrier": true,
	"QuietTarget": true, "QuietTargetStat": true,
	"Malloc": true, "Free": true, "Broadcast": true,
}

var shmemSyncFuncs = map[string]bool{"ToAll": true, "FCollect": true, "Collect": true}

// shmem.PE (and related) methods with no effect on outstanding writes.
var shmemBenignMethods = map[string]bool{
	"MyPE": true, "NumPEs": true, "Clock": true, "World": true, "Pgas": true,
	"WaitUntil64": true, "SetLock": true, "ClearLock": true, "TestLock": true,
	"At": true, "IsZero": true, "NBIOutstanding": true,
}

func (w *syncWalker) walkStmt(s ast.Stmt, st syncState) syncState {
	switch x := s.(type) {
	case *ast.BlockStmt:
		for _, sub := range x.List {
			st = w.walkStmt(sub, st)
		}
		return st
	case *ast.IfStmt:
		if x.Init != nil {
			st = w.walkStmt(x.Init, st)
		}
		w.applyExpr(x.Cond, st)
		thenSt := w.walkStmt(x.Body, st.clone())
		if x.Else != nil {
			elseSt := w.walkStmt(x.Else, st.clone())
			thenSt.union(elseSt)
			return thenSt
		}
		st.union(thenSt)
		return st
	case *ast.ForStmt:
		if x.Init != nil {
			st = w.walkStmt(x.Init, st)
		}
		w.applyExpr(x.Cond, st)
		// Two passes propagate loop-carried pending writes (a put at the
		// bottom of the body racing a read at the top of the next iteration).
		once := w.walkStmt(x.Body, st.clone())
		if x.Post != nil {
			once = w.walkStmt(x.Post, once)
		}
		once.union(st)
		twice := w.walkStmt(x.Body, once.clone())
		if x.Post != nil {
			twice = w.walkStmt(x.Post, twice)
		}
		twice.union(once)
		return twice
	case *ast.RangeStmt:
		w.applyExpr(x.X, st)
		once := w.walkStmt(x.Body, st.clone())
		once.union(st)
		twice := w.walkStmt(x.Body, once.clone())
		twice.union(once)
		return twice
	case *ast.SwitchStmt:
		if x.Init != nil {
			st = w.walkStmt(x.Init, st)
		}
		w.applyExpr(x.Tag, st)
		return w.walkCases(x.Body, st)
	case *ast.TypeSwitchStmt:
		if x.Init != nil {
			st = w.walkStmt(x.Init, st)
		}
		return w.walkCases(x.Body, st)
	case *ast.SelectStmt:
		return w.walkCases(x.Body, st)
	case *ast.LabeledStmt:
		return w.walkStmt(x.Stmt, st)
	case *ast.AssignStmt:
		for _, r := range x.Rhs {
			w.applyExpr(r, st)
		}
		for _, l := range x.Lhs {
			w.applyExpr(l, st) // calls inside index expressions
			w.checkBufWrite(l, st)
		}
		return st
	case *ast.IncDecStmt:
		w.applyExpr(x.X, st)
		w.checkBufWrite(x.X, st)
		return st
	case *ast.ReturnStmt:
		for _, r := range x.Results {
			w.applyExpr(r, st)
		}
		w.noteReturn(st)
		return st
	case *ast.DeferStmt, *ast.GoStmt:
		// Deferred calls run at return, goroutines concurrently: neither
		// completes writes at this program point. Argument evaluation happens
		// now, though.
		if d, ok := x.(*ast.DeferStmt); ok {
			for _, a := range d.Call.Args {
				w.applyExpr(a, st)
			}
		} else if g, ok := x.(*ast.GoStmt); ok {
			for _, a := range g.Call.Args {
				w.applyExpr(a, st)
			}
		}
		return st
	case nil:
		return st
	default:
		w.applyExpr(x, st)
		return st
	}
}

func (w *syncWalker) walkCases(body *ast.BlockStmt, st syncState) syncState {
	merged := st.clone() // the no-case-taken path
	for _, c := range body.List {
		caseSt := st.clone()
		switch cl := c.(type) {
		case *ast.CaseClause:
			for _, e := range cl.List {
				w.applyExpr(e, caseSt)
			}
			for _, sub := range cl.Body {
				caseSt = w.walkStmt(sub, caseSt)
			}
		case *ast.CommClause:
			if cl.Comm != nil {
				caseSt = w.walkStmt(cl.Comm, caseSt)
			}
			for _, sub := range cl.Body {
				caseSt = w.walkStmt(sub, caseSt)
			}
		}
		merged.union(caseSt)
	}
	return merged
}

// applyExpr applies the effects of every call inside n to st, in order.
func (w *syncWalker) applyExpr(n ast.Node, st syncState) {
	stmtCalls(n, func(call *ast.CallExpr) { w.applyCall(call, st) })
}

func (w *syncWalker) applyCall(call *ast.CallExpr, st syncState) {
	pass := w.pass
	fn := pass.callee(call)
	if fn == nil {
		// Type conversion or builtin: no effect — except the mutating
		// builtins, which count as writes to their destination buffer.
		// Anything else unresolved is an indirect call that could complete
		// writes — assume it does.
		if tv, ok := pass.Pkg.Info.Types[call.Fun]; ok && tv.IsType() {
			return
		}
		if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
			if _, isBuiltin := pass.Pkg.Info.Uses[id].(*types.Builtin); isBuiltin {
				if (id.Name == "copy" || id.Name == "clear") && len(call.Args) > 0 {
					w.checkBufWrite(call.Args[0], st)
				}
				return
			}
		}
		w.clearAll(st)
		return
	}

	onPE := isMethodOf(fn, shmemPath, "PE", fn.Name()) || isMethodOf(fn, shmemPath, "Sym", fn.Name())
	onCtx := isMethodOf(fn, shmemPath, "Ctx", fn.Name())
	pkgFunc := fn.Pkg() != nil && fn.Pkg().Path() == shmemPath && recvNamed(fn) == nil

	switch {
	case onPE && shmemWriteMethods[fn.Name()] > 0:
		w.recordWrite(call, shmemWriteMethods[fn.Name()], st.writes)
	case pkgFunc && shmemWriteFuncs[fn.Name()] > 0:
		w.recordWrite(call, shmemWriteFuncs[fn.Name()], st.writes)
	case onPE && fn.Name() == "PutSignal":
		// Put-with-signal delivers payload (arg 1) and flag word (arg 4) in
		// one visibility event. Completion is signal-mediated for the
		// *awaiter*; for the origin both objects stay outstanding until
		// Quiet, exactly like PutMem.
		w.recordWrite(call, 1, st.writes)
		w.recordWrite(call, 4, st.writes)
	case onPE && fn.Name() == "PutSignalNBI":
		// Fused nonblocking data+signal: payload (arg 1) and flag word (arg 4)
		// complete together at Quiet; the payload buffer (arg 3) stays pinned.
		w.recordWrite(call, 1, st.nbi)
		w.recordWrite(call, 4, st.nbi)
		w.recordNBISrc(call, 3, st)
	case onCtx:
		w.applyCtxCall(call, fn.Name(), st)
	case onPE && isNBIWriteMethod(fn.Name()):
		args := shmemNBIWriteMethods[fn.Name()]
		w.recordWrite(call, args[0], st.nbi)
		w.recordNBISrc(call, args[1], st)
	case pkgFunc && isNBIWriteFunc(fn.Name()):
		args := shmemNBIWriteFuncs[fn.Name()]
		w.recordWrite(call, args[0], st.nbi)
		w.recordNBISrc(call, args[1], st)
	case onPE && shmemNBIReadMethods[fn.Name()] > 0:
		w.checkRead(call, shmemNBIReadMethods[fn.Name()], st)
	case pkgFunc && shmemNBIReadFuncs[fn.Name()] > 0:
		w.checkRead(call, shmemNBIReadFuncs[fn.Name()], st)
	case onPE && fn.Name() == "Ptr":
		w.checkRead(call, 0, st)
	case onPE && shmemReadMethods[fn.Name()] > 0:
		w.checkRead(call, shmemReadMethods[fn.Name()], st)
	case pkgFunc && shmemReadFuncs[fn.Name()] > 0:
		w.checkRead(call, shmemReadFuncs[fn.Name()], st)
	case onPE && fn.Name() == "Fence":
		w.clearFence(st)
	case onPE && shmemSyncMethods[fn.Name()]:
		w.clearDefault(st)
	case pkgFunc && shmemSyncFuncs[fn.Name()]:
		w.clearDefault(st)
	case onPE || pkgFunc:
		// Rest of the modelled shmem PE surface (WaitUntil64, locks,
		// accessors): no effect on the caller's outstanding writes.
	default:
		w.applyUnknown(call, fn, st)
	}
}

// applyUnknown handles a resolved call outside the modelled shmem API: a
// module-local function is seen through via its effect summary; a Transport
// interface method via its modelled effect; a module call with neither
// (interface method without a body, or no Program) conservatively counts as a
// completion point for everything, contexts included.
func (w *syncWalker) applyUnknown(call *ast.CallExpr, fn *types.Func, st syncState) {
	if fn.Pkg() == nil {
		return // universe-scope methods (error.Error)
	}
	if sum := w.pass.summaryOf(fn); sum != nil {
		w.applySummary(call, fn, sum, st)
		return
	}
	if eff, ok := transportSyncEffect(fn); ok {
		switch eff {
		case "quiet":
			w.clearDefault(st)
		case "put":
			if w.sum != nil {
				w.sum.CreatesUnmapped = true
			}
		}
		return
	}
	path := fn.Pkg().Path()
	if shmemBenignMethods[fn.Name()] && path == shmemPath {
		return
	}
	if (w.pass.Pkg.Types != nil && fn.Pkg() == w.pass.Pkg.Types) || isModulePath(path) {
		w.clearAll(st)
		return
	}
	// Standard library: cannot touch the communication layer.
}

// transportSyncEffect models the caf Transport interface, whose methods have
// no bodies to summarize: Quiet/Barrier and the allocation collectives are
// completion points; the one-sided writes and AMOs create pending state the
// checker cannot key (offset-based, no Sym handle); everything else is inert.
func transportSyncEffect(fn *types.Func) (string, bool) {
	if !isMethodOf(fn, cafPath, "Transport", fn.Name()) {
		return "", false
	}
	switch fn.Name() {
	case "Quiet", "Barrier", "Malloc", "Free":
		return "quiet", true
	case "PutMem", "PutMemV", "PutStrided1D", "DirectWrite",
		"Swap64", "CompareSwap64", "FetchAdd64", "FetchAnd64", "FetchOr64", "FetchXor64":
		return "put", true
	}
	return "benign", true
}

// applySummary applies a summarized callee's effects to the caller's state:
// first its reads of caller-pending objects (checked against the pre-call
// state), then its completion points, then the pending operations it leaves
// outstanding, mapped through the call's arguments.
func (w *syncWalker) applySummary(call *ast.CallExpr, fn *types.Func, sum *Summary, st syncState) {
	via := fn.Name()
	for _, e := range sum.ReadsSym {
		if arg := argForParam(call, e.Param); arg != nil {
			w.checkSymRead(call.Pos(), arg, st, via)
		}
	}
	for _, e := range sum.WritesBuf {
		if arg := argForParam(call, e.Param); arg != nil {
			w.checkBufWriteVia(call.Pos(), arg, st, via)
		}
	}
	if sum.CompletesAll {
		w.clearAll(st)
		return
	}
	if sum.QuietsDefault {
		w.clearDefault(st)
	}
	if sum.Fences {
		w.clearFence(st)
	}
	for _, e := range sum.QuietsCtx {
		if arg := argForParam(call, e.Param); arg != nil {
			w.clearCtxKey(w.pass.exprKey(arg), st)
		}
	}
	if sum.QuietsAnyCtx {
		w.clearAnyCtx(st)
	}
	for _, e := range sum.PutsBlocking {
		if arg := argForParam(call, e.Param); arg != nil {
			w.recordPending(w.pass.exprKey(arg), call.Pos(), st.writes)
		}
	}
	for _, e := range sum.PutsNBI {
		if arg := argForParam(call, e.Param); arg != nil {
			w.recordPending(w.pass.exprKey(arg), call.Pos(), st.nbi)
		}
	}
	for _, e := range sum.PinsNBISrc {
		if arg := argForParam(call, e.Param); arg != nil {
			if base := bufBase(arg); base != nil {
				w.recordPending(w.pass.exprKey(base), call.Pos(), st.nbiSrc)
			}
		}
	}
	for _, e := range sum.PutsCtx {
		ctxArg, objArg := argForParam(call, e.CtxParam), argForParam(call, e.ObjParam)
		if ctxArg != nil && objArg != nil {
			w.recordCtxPending(w.pass.exprKey(ctxArg), w.pass.exprKey(objArg), call.Pos(), st.nbi, false)
		}
	}
	for _, e := range sum.PinsCtxSrc {
		ctxArg, objArg := argForParam(call, e.CtxParam), argForParam(call, e.ObjParam)
		if ctxArg == nil || objArg == nil {
			continue
		}
		if base := bufBase(objArg); base != nil {
			w.recordCtxPending(w.pass.exprKey(ctxArg), w.pass.exprKey(base), call.Pos(), st.nbiSrc, true)
		}
	}
	if sum.CreatesUnmapped && w.sum != nil {
		w.sum.CreatesUnmapped = true
	}
}

// Completion wrappers: clear caller state and, in summarize mode, record the
// completion point in the summary. Recording a may-completion can only mask
// findings in callers, never invent them.

func (w *syncWalker) clearAll(st syncState) {
	if w.sum != nil {
		w.sum.CompletesAll = true
	}
	st.clearAll()
}

func (w *syncWalker) clearDefault(st syncState) {
	if w.sum != nil {
		w.sum.QuietsDefault = true
	}
	st.clearDefault()
}

func (w *syncWalker) clearFence(st syncState) {
	if w.sum != nil {
		w.sum.Fences = true
	}
	st.clearFence()
}

func (w *syncWalker) clearCtxKey(recvKey string, st syncState) {
	if w.sum != nil {
		if i, ok := w.paramIdx[recvKey]; ok {
			w.sum.QuietsCtx = append(w.sum.QuietsCtx, effect{Param: i, Pos: token.NoPos})
		} else {
			w.sum.QuietsAnyCtx = true
		}
	}
	st.clearCtx(recvKey)
}

func (w *syncWalker) clearAnyCtx(st syncState) {
	if w.sum != nil {
		w.sum.QuietsAnyCtx = true
	}
	st.clearAnyCtx()
}

// noteReturn harvests, in summarize mode, the pending operations still
// outstanding at a return point — after applying deferred completions — into
// the summary, mapped back to parameters where possible.
func (w *syncWalker) noteReturn(st syncState) {
	if w.sum == nil {
		return
	}
	end := st.clone()
	w.defc.apply(end)
	harvest := func(m pendingWrites, plain func(i int, pos token.Pos), ctxm map[string]ctxEffect, ctx func(ctxEffect)) {
		for k, pos := range m {
			if _, isMarker := markerParam(pos); isMarker {
				continue // the caller's own pre-existing pending state
			}
			if strings.HasPrefix(k, ctxKeyPrefix) {
				if e, ok := ctxm[k]; ok && e.CtxParam >= 0 && e.ObjParam >= 0 && ctx != nil {
					ctx(e)
				} else {
					w.sum.CreatesUnmapped = true
				}
				continue
			}
			if i, ok := w.paramIdx[k]; ok {
				plain(i, pos)
			} else {
				w.sum.CreatesUnmapped = true
			}
		}
	}
	harvest(end.writes, func(i int, pos token.Pos) {
		w.sum.PutsBlocking = append(w.sum.PutsBlocking, effect{Param: i, Pos: pos})
	}, nil, nil)
	harvest(end.nbi, func(i int, pos token.Pos) {
		w.sum.PutsNBI = append(w.sum.PutsNBI, effect{Param: i, Pos: pos})
	}, w.ctxPut, func(e ctxEffect) {
		w.sum.PutsCtx = append(w.sum.PutsCtx, e)
	})
	harvest(end.nbiSrc, func(i int, pos token.Pos) {
		w.sum.PinsNBISrc = append(w.sum.PinsNBISrc, effect{Param: i, Pos: pos})
	}, w.ctxPin, func(e ctxEffect) {
		w.sum.PinsCtxSrc = append(w.sum.PinsCtxSrc, e)
	})
}

// collectDeferredCompletions records the completion effects of every deferred
// call in body (outside nested function literals, whose defers are their
// own). A deferred completion the walker cannot resolve counts as completing
// everything — the masking direction.
func (w *syncWalker) collectDeferredCompletions(body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		d, ok := n.(*ast.DeferStmt)
		if !ok {
			return true
		}
		if fl, ok := ast.Unparen(d.Call.Fun).(*ast.FuncLit); ok {
			// defer func() { ... }(): the literal's statements run at return.
			ast.Inspect(fl.Body, func(n ast.Node) bool {
				if _, ok := n.(*ast.FuncLit); ok {
					return false
				}
				if call, ok := n.(*ast.CallExpr); ok {
					w.deferCompletionOf(call)
				}
				return true
			})
			return true
		}
		w.deferCompletionOf(d.Call)
		return true
	})
}

func (w *syncWalker) deferCompletionOf(call *ast.CallExpr) {
	pass := w.pass
	fn := pass.callee(call)
	if fn == nil {
		if tv, ok := pass.Pkg.Info.Types[call.Fun]; ok && tv.IsType() {
			return
		}
		if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
			if _, isBuiltin := pass.Pkg.Info.Uses[id].(*types.Builtin); isBuiltin {
				return
			}
		}
		w.defc.all = true
		if w.sum != nil {
			w.sum.CompletesAll = true
		}
		return
	}
	onPE := isMethodOf(fn, shmemPath, "PE", fn.Name())
	switch {
	case onPE && shmemSyncMethods[fn.Name()]:
		w.defc.def = true
		if w.sum != nil {
			w.sum.QuietsDefault = true
		}
	case onPE && fn.Name() == "Fence":
		w.defc.fence = true
		if w.sum != nil {
			w.sum.Fences = true
		}
	case isMethodOf(fn, shmemPath, "Ctx", fn.Name()):
		switch fn.Name() {
		case "Quiet", "QuietStat", "QuietTarget", "Destroy":
			rk := w.ctxRecvKey(call)
			w.defc.ctxKeys = append(w.defc.ctxKeys, rk)
			if w.sum != nil {
				if i, ok := w.paramIdx[rk]; ok {
					w.sum.QuietsCtx = append(w.sum.QuietsCtx, effect{Param: i, Pos: token.NoPos})
				} else {
					w.sum.QuietsAnyCtx = true
				}
			}
		}
	case fn.Pkg() == nil || onPE:
	default:
		if sum := pass.summaryOf(fn); sum != nil {
			if sum.CompletesAll {
				w.defc.all = true
			}
			if sum.QuietsDefault {
				w.defc.def = true
			}
			if sum.Fences {
				w.defc.fence = true
			}
			if sum.QuietsAnyCtx || len(sum.QuietsCtx) > 0 {
				w.defc.anyCtx = true
			}
			if w.sum != nil {
				w.sum.CompletesAll = w.sum.CompletesAll || sum.CompletesAll
				w.sum.QuietsDefault = w.sum.QuietsDefault || sum.QuietsDefault
				w.sum.Fences = w.sum.Fences || sum.Fences
				w.sum.QuietsAnyCtx = w.sum.QuietsAnyCtx || sum.QuietsAnyCtx || len(sum.QuietsCtx) > 0
			}
			return
		}
		if eff, ok := transportSyncEffect(fn); ok {
			if eff == "quiet" {
				w.defc.def = true
				if w.sum != nil {
					w.sum.QuietsDefault = true
				}
			}
			return
		}
		if (pass.Pkg.Types != nil && fn.Pkg() == pass.Pkg.Types) || isModulePath(fn.Pkg().Path()) {
			w.defc.all = true
			if w.sum != nil {
				w.sum.CompletesAll = true
			}
		}
	}
}

// applyCtxCall applies the effect of a shmem.Ctx method. Context writes live
// under composite keys so only the owning context's Quiet releases them.
func (w *syncWalker) applyCtxCall(call *ast.CallExpr, name string, st syncState) {
	rk := w.ctxRecvKey(call)
	switch name {
	case "PutMemNBI": // (target, sym, off, data)
		w.recordCtxWrite(call, 1, rk, st.nbi)
		w.recordCtxNBISrc(call, 3, rk, st)
	case "PutSignalNBI": // (target, sym, off, data, sig, sigIdx, sigVal)
		w.recordCtxWrite(call, 1, rk, st.nbi)
		w.recordCtxWrite(call, 4, rk, st.nbi)
		w.recordCtxNBISrc(call, 3, rk, st)
	case "GetMemNBI": // (target, sym, off, dst)
		w.checkRead(call, 1, st)
	case "Quiet", "QuietStat", "QuietTarget", "Destroy":
		// QuietTarget completes one destination; without per-target precision
		// it conservatively counts as the context's full quiet.
		w.clearCtxKey(rk, st)
	default:
		// Fence (ordering only), PE, Outstanding: no completion effect.
	}
}

// ctxRecvKey keys a context by its receiver expression; an unresolvable
// receiver collapses to one shared key (distinct contexts then alias, which
// can only mask findings, never invent them — a quiet on one clears both).
func (w *syncWalker) ctxRecvKey(call *ast.CallExpr) string {
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		return w.pass.exprKey(sel.X)
	}
	return "?"
}

func (w *syncWalker) recordCtxWrite(call *ast.CallExpr, symArg int, recvKey string, m pendingWrites) {
	if symArg >= len(call.Args) {
		return
	}
	w.recordCtxPending(recvKey, w.pass.exprKey(call.Args[symArg]), call.Pos(), m, false)
}

func (w *syncWalker) recordCtxNBISrc(call *ast.CallExpr, srcArg int, recvKey string, st syncState) {
	if srcArg >= len(call.Args) {
		return
	}
	base := bufBase(call.Args[srcArg])
	if base == nil {
		return
	}
	w.recordCtxPending(recvKey, w.pass.exprKey(base), call.Pos(), st.nbiSrc, true)
}

// recordCtxPending records a context-scoped pending entry and, in summarize
// mode, remembers the (ctx, object) parameter mapping so noteReturn can map
// the entry back to the caller's arguments.
func (w *syncWalker) recordCtxPending(recvKey, objKey string, pos token.Pos, m pendingWrites, pin bool) {
	full := ctxKey(recvKey, objKey)
	if old, ok := m[full]; !ok || old < 0 {
		m[full] = pos
	}
	if w.sum == nil {
		return
	}
	eff := ctxEffect{CtxParam: -1, ObjParam: -1, Pos: pos}
	if i, ok := w.paramIdx[recvKey]; ok {
		eff.CtxParam = i
	}
	if i, ok := w.paramIdx[objKey]; ok {
		eff.ObjParam = i
	}
	if pin {
		w.ctxPin[full] = eff
	} else {
		w.ctxPut[full] = eff
	}
}

// findCtxEntry finds an outstanding context-scoped entry for plain key k
// (stored as "ctx:<recv>|<k>") regardless of which context issued it.
func findCtxEntry(m pendingWrites, k string) (token.Pos, bool) {
	suffix := "|" + k
	for key, pos := range m {
		if strings.HasPrefix(key, ctxKeyPrefix) && strings.HasSuffix(key, suffix) {
			return pos, true
		}
	}
	return 0, false
}

func isNBIWriteMethod(name string) bool { _, ok := shmemNBIWriteMethods[name]; return ok }
func isNBIWriteFunc(name string) bool   { _, ok := shmemNBIWriteFuncs[name]; return ok }

func isModulePath(path string) bool {
	return path == "cafshmem" || len(path) > len("cafshmem/") && path[:len("cafshmem/")] == "cafshmem/"
}

func (w *syncWalker) recordWrite(call *ast.CallExpr, symArg int, m pendingWrites) {
	if symArg >= len(call.Args) {
		return
	}
	w.recordPending(w.pass.exprKey(call.Args[symArg]), call.Pos(), m)
}

// recordPending records a pending operation, keeping the oldest real
// position but always displacing a parameter marker (a real put on a
// parameter must be harvested as a create, not skipped as caller state).
func (w *syncWalker) recordPending(key string, pos token.Pos, m pendingWrites) {
	if old, ok := m[key]; !ok || old < 0 {
		m[key] = pos
	}
}

// recordNBISrc pins the source buffer of a nonblocking put, keyed by the
// buffer's base expression so that a later write to buf[i] or buf matches a
// put of buf[2:6].
func (w *syncWalker) recordNBISrc(call *ast.CallExpr, srcArg int, st syncState) {
	if srcArg >= len(call.Args) {
		return
	}
	base := bufBase(call.Args[srcArg])
	if base == nil {
		return
	}
	w.recordPending(w.pass.exprKey(base), call.Pos(), st.nbiSrc)
}

// bufBase strips slicing/indexing/parens down to the underlying buffer
// expression, or nil for literals and calls (nothing addressable to reuse).
func bufBase(e ast.Expr) ast.Expr {
	for {
		switch x := e.(type) {
		case *ast.ParenExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.Ident, *ast.SelectorExpr:
			return e
		default:
			return nil
		}
	}
}

// checkBufWrite reports a mutation of a buffer still pinned by an outstanding
// nonblocking put.
func (w *syncWalker) checkBufWrite(lhs ast.Expr, st syncState) {
	w.checkBufWriteVia(lhs.Pos(), lhs, st, "")
}

// checkBufWriteVia is checkBufWrite with an optional callee name: via != ""
// reports a summarized callee's write to the caller's pinned buffer argument.
func (w *syncWalker) checkBufWriteVia(pos token.Pos, lhs ast.Expr, st syncState, via string) {
	base := bufBase(lhs)
	if base == nil {
		return
	}
	key := w.pass.exprKey(base)
	subject := "write to"
	if via != "" {
		subject = "call to " + via + " writes"
	}
	if putPos, ok := st.nbiSrc[key]; ok {
		if w.noteMarkerWrite(putPos, pos) {
			return
		}
		w.pass.Reportf(pos, "%s NBI source buffer %s before Quiet completes the nonblocking put at line %d",
			subject, types.ExprString(base), w.pass.Pkg.Fset.Position(putPos).Line)
		return
	}
	if putPos, ok := findCtxEntry(st.nbiSrc, key); ok {
		w.pass.Reportf(pos, "%s NBI source buffer %s before the owning context's Quiet completes the nonblocking put at line %d",
			subject, types.ExprString(base), w.pass.Pkg.Fset.Position(putPos).Line)
	}
}

func (w *syncWalker) checkRead(call *ast.CallExpr, symArg int, st syncState) {
	if symArg >= len(call.Args) {
		return
	}
	w.checkSymRead(call.Pos(), call.Args[symArg], st, "")
}

// checkSymRead checks a read of sym against the outstanding-write state. In
// summarize mode a hit on a parameter marker records a ReadsSym/WritesBuf
// effect instead of a diagnostic. via != "" attributes the read to a
// summarized callee.
func (w *syncWalker) checkSymRead(pos token.Pos, sym ast.Expr, st syncState, via string) {
	key := w.pass.exprKey(sym)
	subject := "read of"
	if via != "" {
		subject = "call to " + via + " reads"
	}
	if putPos, ok := st.writes[key]; ok {
		if w.noteMarkerRead(putPos, pos) {
			return
		}
		w.pass.Reportf(pos, "%s %s before completing the one-sided write at line %d (missing Quiet/Fence/Barrier)",
			subject, types.ExprString(sym), w.pass.Pkg.Fset.Position(putPos).Line)
		return
	}
	if putPos, ok := st.nbi[key]; ok {
		if w.noteMarkerRead(putPos, pos) {
			return
		}
		w.pass.Reportf(pos, "%s %s before completing the nonblocking write at line %d (missing Quiet)",
			subject, types.ExprString(sym), w.pass.Pkg.Fset.Position(putPos).Line)
		return
	}
	if putPos, ok := findCtxEntry(st.nbi, key); ok {
		w.pass.Reportf(pos, "%s %s before the owning context completes its nonblocking write at line %d (PE-level Quiet/Barrier never completes context ops)",
			subject, types.ExprString(sym), w.pass.Pkg.Fset.Position(putPos).Line)
	}
}

// noteMarkerRead records a read of a still-pending parameter in summarize
// mode; reports true when putPos was a marker (no diagnostic wanted).
func (w *syncWalker) noteMarkerRead(putPos, readPos token.Pos) bool {
	i, isMarker := markerParam(putPos)
	if !isMarker {
		return false
	}
	if w.sum != nil {
		w.sum.ReadsSym = append(w.sum.ReadsSym, effect{Param: i, Pos: readPos})
	}
	return true
}

func (w *syncWalker) noteMarkerWrite(putPos, writePos token.Pos) bool {
	i, isMarker := markerParam(putPos)
	if !isMarker {
		return false
	}
	if w.sum != nil {
		w.sum.WritesBuf = append(w.sum.WritesBuf, effect{Param: i, Pos: writePos})
	}
	return true
}
