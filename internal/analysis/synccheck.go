package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// SyncCheck flags reads of a symmetric object that can observe an incomplete
// one-sided write: a shmem Put/IPut/atomic update followed on some path by a
// Get (or other read) of the same symmetric object with no intervening
// Quiet/Fence/Barrier or collective. This is the contract of paper §IV-B —
// OpenSHMEM puts complete locally; remote visibility requires an explicit
// completion operation, which the CAF translation inserts and hand-written
// hybrid code must not forget.
//
// It additionally models the OpenSHMEM 1.3 *nonblocking* contract
// (shmem_put_nbi / shmem_get_nbi):
//
//   - Fence orders blocking puts but does NOT complete nonblocking operations;
//     only Quiet (or a barrier/collective, which quiets internally) does. A
//     read after Fence that races a PutMemNBI is still reported.
//   - The source buffer of a nonblocking put is owned by the runtime until
//     Quiet. Any write to it (assignment, ++/--, append/copy into it) before
//     the next completion point is reported as source-buffer reuse.
//
// The analysis is intraprocedural and keyed by the symmetric-handle
// expression (for remote completion) or the source-buffer base expression
// (for NBI pinning). Calls the analyzer cannot see through (module-local
// helpers, function values) conservatively count as completion points, so
// findings are high-confidence straight-line bugs.
var SyncCheck = &Analyzer{
	Name: "synccheck",
	Doc:  "reads of symmetric data racing un-quieted one-sided writes",
	Run:  runSyncCheck,
}

// pendingWrites maps a key (symmetric-object or buffer expression) to the
// position of the oldest outstanding operation on the current path.
type pendingWrites map[string]token.Pos

func (s pendingWrites) clone() pendingWrites {
	out := make(pendingWrites, len(s))
	for k, v := range s {
		out[k] = v
	}
	return out
}

func (s pendingWrites) union(o pendingWrites) {
	for k, v := range o {
		if old, ok := s[k]; !ok || v < old {
			s[k] = v
		}
	}
}

// syncState is the per-path dataflow state. The three maps have different
// completion rules, mirroring the memory model:
//
//	writes — blocking one-sided writes; completed by Quiet OR Fence (for the
//	         purposes of this checker: any completion point).
//	nbi    — nonblocking one-sided writes; completed by Quiet but NOT Fence.
//	nbiSrc — local source buffers pinned by outstanding nonblocking puts,
//	         keyed by buffer base expression; released at Quiet.
type syncState struct {
	writes pendingWrites
	nbi    pendingWrites
	nbiSrc pendingWrites
}

func newSyncState() syncState {
	return syncState{writes: pendingWrites{}, nbi: pendingWrites{}, nbiSrc: pendingWrites{}}
}

func (s syncState) clone() syncState {
	return syncState{writes: s.writes.clone(), nbi: s.nbi.clone(), nbiSrc: s.nbiSrc.clone()}
}

func (s syncState) union(o syncState) {
	s.writes.union(o.writes)
	s.nbi.union(o.nbi)
	s.nbiSrc.union(o.nbiSrc)
}

// clearAll models an opaque completion point (an indirect call or module
// helper that may quiet anything, contexts included).
func (s syncState) clearAll() {
	clear(s.writes)
	clear(s.nbi)
	clear(s.nbiSrc)
}

// clearFence models Fence: blocking puts are ordered, nonblocking operations
// remain outstanding and their source buffers stay pinned.
func (s syncState) clearFence() {
	clear(s.writes)
}

// ctxKeyPrefix namespaces an entry under a communication context, keyed by the
// receiver expression: "ctx:<recv>|<sym-or-buffer>". The 1.4 contract is that
// PE-level Quiet/Barrier never complete context ops and a context's Quiet
// never completes anyone else's, so the two key spaces clear independently.
const ctxKeyPrefix = "ctx:"

func ctxKey(recvKey, key string) string { return ctxKeyPrefix + recvKey + "|" + key }

func clearDefaultEntries(m pendingWrites) {
	for k := range m {
		if !strings.HasPrefix(k, ctxKeyPrefix) {
			delete(m, k)
		}
	}
}

func clearPrefixEntries(m pendingWrites, prefix string) {
	for k := range m {
		if strings.HasPrefix(k, prefix) {
			delete(m, k)
		}
	}
}

// clearDefault models a PE-level completion point (Quiet, barrier,
// collective): everything on the default context completes, context-scoped
// operations stay outstanding and their source buffers stay pinned.
func (s syncState) clearDefault() {
	clearDefaultEntries(s.writes)
	clearDefaultEntries(s.nbi)
	clearDefaultEntries(s.nbiSrc)
}

// clearCtx models ctx.Quiet / ctx.Destroy for the context held in recvKey:
// only that context's entries complete.
func (s syncState) clearCtx(recvKey string) {
	prefix := ctxKey(recvKey, "")
	clearPrefixEntries(s.writes, prefix)
	clearPrefixEntries(s.nbi, prefix)
	clearPrefixEntries(s.nbiSrc, prefix)
}

func runSyncCheck(pass *Pass) {
	pass.funcBodies(func(name string, body *ast.BlockStmt) {
		w := &syncWalker{pass: pass}
		w.walkStmt(body, newSyncState())
	})
}

type syncWalker struct {
	pass *Pass
}

// shmem.PE methods that issue one-sided writes needing Quiet for remote
// completion (or whose update bypasses the ordered put stream, for AMOs),
// with the index of their Sym argument.
var shmemWriteMethods = map[string]int{
	"PutMem": 1, "IPutMem": 1, "PutMemV": 1,
	"Swap": 1, "CompareSwap": 1, "FetchAdd": 1, "FetchInc": 1, "Add": 1,
	"FetchAnd": 1, "FetchOr": 1, "FetchXor": 1, "AtomicSet": 1,
}

// Package-level generic write functions, with the index of their Sym argument.
var shmemWriteFuncs = map[string]int{"Put": 2, "P": 2, "IPut": 2}

// Nonblocking write methods: Sym argument index and source-buffer argument
// index. They populate both the nbi map (remote completion) and nbiSrc
// (buffer pinning).
var shmemNBIWriteMethods = map[string][2]int{
	"PutMemNBI":  {1, 3},
	"PutMemVNBI": {1, 4},
	"IPutMemNBI": {1, 5},
}

var shmemNBIWriteFuncs = map[string][2]int{"PutNBI": {2, 4}}

// Nonblocking reads: the remote Sym they read (checked against outstanding
// writes like any read). Their *destination* buffer is undefined until Quiet,
// but local-buffer read tracking is out of scope for a handle-keyed checker.
var shmemNBIReadMethods = map[string]int{"GetMemNBI": 1, "IGetMemNBI": 1}

var shmemNBIReadFuncs = map[string]int{"GetNBI": 2}

// shmem.PE methods that read symmetric data, with their Sym argument index.
var shmemReadMethods = map[string]int{
	"GetMem": 1, "IGetMem": 1, "GetMemV": 1, "AtomicFetch": 1, "Ptr": 0,
}

var shmemReadFuncs = map[string]int{"Get": 2, "G": 2, "IGet": 2}

// shmem.PE methods that complete ALL outstanding default-context operations,
// nonblocking included — but never context-scoped ones (OpenSHMEM 1.4: a
// context is completed only by its own Quiet). Fence is deliberately absent:
// per the OpenSHMEM memory model it orders the put stream but does not
// complete put_nbi/get_nbi. QuietTarget completes one destination; the checker
// has no per-target precision, so it conservatively counts as a full quiet
// (missed bugs toward other targets, never false positives).
var shmemSyncMethods = map[string]bool{
	"Quiet": true, "QuietStat": true, "Barrier": true,
	"QuietTarget": true, "QuietTargetStat": true,
	"Malloc": true, "Free": true, "Broadcast": true,
}

var shmemSyncFuncs = map[string]bool{"ToAll": true, "FCollect": true, "Collect": true}

// shmem.PE (and related) methods with no effect on outstanding writes.
var shmemBenignMethods = map[string]bool{
	"MyPE": true, "NumPEs": true, "Clock": true, "World": true, "Pgas": true,
	"WaitUntil64": true, "SetLock": true, "ClearLock": true, "TestLock": true,
	"At": true, "IsZero": true, "NBIOutstanding": true,
}

func (w *syncWalker) walkStmt(s ast.Stmt, st syncState) syncState {
	switch x := s.(type) {
	case *ast.BlockStmt:
		for _, sub := range x.List {
			st = w.walkStmt(sub, st)
		}
		return st
	case *ast.IfStmt:
		if x.Init != nil {
			st = w.walkStmt(x.Init, st)
		}
		w.applyExpr(x.Cond, st)
		thenSt := w.walkStmt(x.Body, st.clone())
		if x.Else != nil {
			elseSt := w.walkStmt(x.Else, st.clone())
			thenSt.union(elseSt)
			return thenSt
		}
		st.union(thenSt)
		return st
	case *ast.ForStmt:
		if x.Init != nil {
			st = w.walkStmt(x.Init, st)
		}
		w.applyExpr(x.Cond, st)
		// Two passes propagate loop-carried pending writes (a put at the
		// bottom of the body racing a read at the top of the next iteration).
		once := w.walkStmt(x.Body, st.clone())
		if x.Post != nil {
			once = w.walkStmt(x.Post, once)
		}
		once.union(st)
		twice := w.walkStmt(x.Body, once.clone())
		if x.Post != nil {
			twice = w.walkStmt(x.Post, twice)
		}
		twice.union(once)
		return twice
	case *ast.RangeStmt:
		w.applyExpr(x.X, st)
		once := w.walkStmt(x.Body, st.clone())
		once.union(st)
		twice := w.walkStmt(x.Body, once.clone())
		twice.union(once)
		return twice
	case *ast.SwitchStmt:
		if x.Init != nil {
			st = w.walkStmt(x.Init, st)
		}
		w.applyExpr(x.Tag, st)
		return w.walkCases(x.Body, st)
	case *ast.TypeSwitchStmt:
		if x.Init != nil {
			st = w.walkStmt(x.Init, st)
		}
		return w.walkCases(x.Body, st)
	case *ast.SelectStmt:
		return w.walkCases(x.Body, st)
	case *ast.LabeledStmt:
		return w.walkStmt(x.Stmt, st)
	case *ast.AssignStmt:
		for _, r := range x.Rhs {
			w.applyExpr(r, st)
		}
		for _, l := range x.Lhs {
			w.applyExpr(l, st) // calls inside index expressions
			w.checkBufWrite(l, st)
		}
		return st
	case *ast.IncDecStmt:
		w.applyExpr(x.X, st)
		w.checkBufWrite(x.X, st)
		return st
	case *ast.DeferStmt, *ast.GoStmt:
		// Deferred calls run at return, goroutines concurrently: neither
		// completes writes at this program point. Argument evaluation happens
		// now, though.
		if d, ok := x.(*ast.DeferStmt); ok {
			for _, a := range d.Call.Args {
				w.applyExpr(a, st)
			}
		} else if g, ok := x.(*ast.GoStmt); ok {
			for _, a := range g.Call.Args {
				w.applyExpr(a, st)
			}
		}
		return st
	case nil:
		return st
	default:
		w.applyExpr(x, st)
		return st
	}
}

func (w *syncWalker) walkCases(body *ast.BlockStmt, st syncState) syncState {
	merged := st.clone() // the no-case-taken path
	for _, c := range body.List {
		caseSt := st.clone()
		switch cl := c.(type) {
		case *ast.CaseClause:
			for _, e := range cl.List {
				w.applyExpr(e, caseSt)
			}
			for _, sub := range cl.Body {
				caseSt = w.walkStmt(sub, caseSt)
			}
		case *ast.CommClause:
			if cl.Comm != nil {
				caseSt = w.walkStmt(cl.Comm, caseSt)
			}
			for _, sub := range cl.Body {
				caseSt = w.walkStmt(sub, caseSt)
			}
		}
		merged.union(caseSt)
	}
	return merged
}

// applyExpr applies the effects of every call inside n to st, in order.
func (w *syncWalker) applyExpr(n ast.Node, st syncState) {
	stmtCalls(n, func(call *ast.CallExpr) { w.applyCall(call, st) })
}

func (w *syncWalker) applyCall(call *ast.CallExpr, st syncState) {
	pass := w.pass
	fn := pass.callee(call)
	if fn == nil {
		// Type conversion or builtin: no effect — except the mutating
		// builtins, which count as writes to their destination buffer.
		// Anything else unresolved is an indirect call that could complete
		// writes — assume it does.
		if tv, ok := pass.Pkg.Info.Types[call.Fun]; ok && tv.IsType() {
			return
		}
		if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
			if _, isBuiltin := pass.Pkg.Info.Uses[id].(*types.Builtin); isBuiltin {
				if (id.Name == "copy" || id.Name == "clear") && len(call.Args) > 0 {
					w.checkBufWrite(call.Args[0], st)
				}
				return
			}
		}
		st.clearAll()
		return
	}

	onPE := isMethodOf(fn, shmemPath, "PE", fn.Name()) || isMethodOf(fn, shmemPath, "Sym", fn.Name())
	onCtx := isMethodOf(fn, shmemPath, "Ctx", fn.Name())
	pkgFunc := fn.Pkg() != nil && fn.Pkg().Path() == shmemPath && recvNamed(fn) == nil

	switch {
	case onPE && shmemWriteMethods[fn.Name()] > 0:
		w.recordWrite(call, shmemWriteMethods[fn.Name()], st.writes)
	case pkgFunc && shmemWriteFuncs[fn.Name()] > 0:
		w.recordWrite(call, shmemWriteFuncs[fn.Name()], st.writes)
	case onPE && fn.Name() == "PutSignal":
		// Put-with-signal delivers payload (arg 1) and flag word (arg 4) in
		// one visibility event. Completion is signal-mediated for the
		// *awaiter*; for the origin both objects stay outstanding until
		// Quiet, exactly like PutMem.
		w.recordWrite(call, 1, st.writes)
		w.recordWrite(call, 4, st.writes)
	case onPE && fn.Name() == "PutSignalNBI":
		// Fused nonblocking data+signal: payload (arg 1) and flag word (arg 4)
		// complete together at Quiet; the payload buffer (arg 3) stays pinned.
		w.recordWrite(call, 1, st.nbi)
		w.recordWrite(call, 4, st.nbi)
		w.recordNBISrc(call, 3, st)
	case onCtx:
		w.applyCtxCall(call, fn.Name(), st)
	case onPE && isNBIWriteMethod(fn.Name()):
		args := shmemNBIWriteMethods[fn.Name()]
		w.recordWrite(call, args[0], st.nbi)
		w.recordNBISrc(call, args[1], st)
	case pkgFunc && isNBIWriteFunc(fn.Name()):
		args := shmemNBIWriteFuncs[fn.Name()]
		w.recordWrite(call, args[0], st.nbi)
		w.recordNBISrc(call, args[1], st)
	case onPE && shmemNBIReadMethods[fn.Name()] > 0:
		w.checkRead(call, shmemNBIReadMethods[fn.Name()], st)
	case pkgFunc && shmemNBIReadFuncs[fn.Name()] > 0:
		w.checkRead(call, shmemNBIReadFuncs[fn.Name()], st)
	case onPE && fn.Name() == "Ptr":
		w.checkRead(call, 0, st)
	case onPE && shmemReadMethods[fn.Name()] > 0:
		w.checkRead(call, shmemReadMethods[fn.Name()], st)
	case pkgFunc && shmemReadFuncs[fn.Name()] > 0:
		w.checkRead(call, shmemReadFuncs[fn.Name()], st)
	case onPE && fn.Name() == "Fence":
		st.clearFence()
	case onPE && shmemSyncMethods[fn.Name()]:
		st.clearDefault()
	case pkgFunc && shmemSyncFuncs[fn.Name()]:
		st.clearDefault()
	case onPE || pkgFunc || shmemBenignMethods[fn.Name()] && fn.Pkg() != nil && fn.Pkg().Path() == shmemPath:
		// Other shmem API (WaitUntil64, locks, accessors): no effect on the
		// caller's outstanding writes.
	case fn.Pkg() == nil:
		// Universe-scope methods (error.Error): no effect.
	case pass.Pkg.Types != nil && fn.Pkg() == pass.Pkg.Types:
		// A helper in the package under analysis may quiet internally.
		st.clearAll()
	case isModulePath(fn.Pkg().Path()):
		// Other module packages (caf runtime, pgas substrate) may complete
		// communication internally.
		st.clearAll()
	default:
		// Standard library: cannot touch the communication layer.
	}
}

// applyCtxCall applies the effect of a shmem.Ctx method. Context writes live
// under composite keys so only the owning context's Quiet releases them.
func (w *syncWalker) applyCtxCall(call *ast.CallExpr, name string, st syncState) {
	rk := w.ctxRecvKey(call)
	switch name {
	case "PutMemNBI": // (target, sym, off, data)
		w.recordCtxWrite(call, 1, rk, st.nbi)
		w.recordCtxNBISrc(call, 3, rk, st)
	case "PutSignalNBI": // (target, sym, off, data, sig, sigIdx, sigVal)
		w.recordCtxWrite(call, 1, rk, st.nbi)
		w.recordCtxWrite(call, 4, rk, st.nbi)
		w.recordCtxNBISrc(call, 3, rk, st)
	case "GetMemNBI": // (target, sym, off, dst)
		w.checkRead(call, 1, st)
	case "Quiet", "QuietStat", "QuietTarget", "Destroy":
		// QuietTarget completes one destination; without per-target precision
		// it conservatively counts as the context's full quiet.
		st.clearCtx(rk)
	default:
		// Fence (ordering only), PE, Outstanding: no completion effect.
	}
}

// ctxRecvKey keys a context by its receiver expression; an unresolvable
// receiver collapses to one shared key (distinct contexts then alias, which
// can only mask findings, never invent them — a quiet on one clears both).
func (w *syncWalker) ctxRecvKey(call *ast.CallExpr) string {
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		return w.pass.exprKey(sel.X)
	}
	return "?"
}

func (w *syncWalker) recordCtxWrite(call *ast.CallExpr, symArg int, recvKey string, m pendingWrites) {
	if symArg >= len(call.Args) {
		return
	}
	key := ctxKey(recvKey, w.pass.exprKey(call.Args[symArg]))
	if _, ok := m[key]; !ok {
		m[key] = call.Pos()
	}
}

func (w *syncWalker) recordCtxNBISrc(call *ast.CallExpr, srcArg int, recvKey string, st syncState) {
	if srcArg >= len(call.Args) {
		return
	}
	base := bufBase(call.Args[srcArg])
	if base == nil {
		return
	}
	key := ctxKey(recvKey, w.pass.exprKey(base))
	if _, ok := st.nbiSrc[key]; !ok {
		st.nbiSrc[key] = call.Pos()
	}
}

// findCtxEntry finds an outstanding context-scoped entry for plain key k
// (stored as "ctx:<recv>|<k>") regardless of which context issued it.
func findCtxEntry(m pendingWrites, k string) (token.Pos, bool) {
	suffix := "|" + k
	for key, pos := range m {
		if strings.HasPrefix(key, ctxKeyPrefix) && strings.HasSuffix(key, suffix) {
			return pos, true
		}
	}
	return 0, false
}

func isNBIWriteMethod(name string) bool { _, ok := shmemNBIWriteMethods[name]; return ok }
func isNBIWriteFunc(name string) bool   { _, ok := shmemNBIWriteFuncs[name]; return ok }

func isModulePath(path string) bool {
	return path == "cafshmem" || len(path) > len("cafshmem/") && path[:len("cafshmem/")] == "cafshmem/"
}

func (w *syncWalker) recordWrite(call *ast.CallExpr, symArg int, m pendingWrites) {
	if symArg >= len(call.Args) {
		return
	}
	key := w.pass.exprKey(call.Args[symArg])
	if _, ok := m[key]; !ok {
		m[key] = call.Pos()
	}
}

// recordNBISrc pins the source buffer of a nonblocking put, keyed by the
// buffer's base expression so that a later write to buf[i] or buf matches a
// put of buf[2:6].
func (w *syncWalker) recordNBISrc(call *ast.CallExpr, srcArg int, st syncState) {
	if srcArg >= len(call.Args) {
		return
	}
	base := bufBase(call.Args[srcArg])
	if base == nil {
		return
	}
	key := w.pass.exprKey(base)
	if _, ok := st.nbiSrc[key]; !ok {
		st.nbiSrc[key] = call.Pos()
	}
}

// bufBase strips slicing/indexing/parens down to the underlying buffer
// expression, or nil for literals and calls (nothing addressable to reuse).
func bufBase(e ast.Expr) ast.Expr {
	for {
		switch x := e.(type) {
		case *ast.ParenExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.Ident, *ast.SelectorExpr:
			return e
		default:
			return nil
		}
	}
}

// checkBufWrite reports a mutation of a buffer still pinned by an outstanding
// nonblocking put.
func (w *syncWalker) checkBufWrite(lhs ast.Expr, st syncState) {
	base := bufBase(lhs)
	if base == nil {
		return
	}
	key := w.pass.exprKey(base)
	if putPos, ok := st.nbiSrc[key]; ok {
		w.pass.Reportf(lhs.Pos(), "write to NBI source buffer %s before Quiet completes the nonblocking put at line %d",
			types.ExprString(base), w.pass.Pkg.Fset.Position(putPos).Line)
		return
	}
	if putPos, ok := findCtxEntry(st.nbiSrc, key); ok {
		w.pass.Reportf(lhs.Pos(), "write to NBI source buffer %s before the owning context's Quiet completes the nonblocking put at line %d",
			types.ExprString(base), w.pass.Pkg.Fset.Position(putPos).Line)
	}
}

func (w *syncWalker) checkRead(call *ast.CallExpr, symArg int, st syncState) {
	if symArg >= len(call.Args) {
		return
	}
	sym := call.Args[symArg]
	key := w.pass.exprKey(sym)
	if putPos, ok := st.writes[key]; ok {
		w.pass.Reportf(call.Pos(), "read of %s before completing the one-sided write at line %d (missing Quiet/Fence/Barrier)",
			types.ExprString(sym), w.pass.Pkg.Fset.Position(putPos).Line)
		return
	}
	if putPos, ok := st.nbi[key]; ok {
		w.pass.Reportf(call.Pos(), "read of %s before completing the nonblocking write at line %d (missing Quiet)",
			types.ExprString(sym), w.pass.Pkg.Fset.Position(putPos).Line)
		return
	}
	if putPos, ok := findCtxEntry(st.nbi, key); ok {
		w.pass.Reportf(call.Pos(), "read of %s before the owning context completes its nonblocking write at line %d (PE-level Quiet/Barrier never completes context ops)",
			types.ExprString(sym), w.pass.Pkg.Fset.Position(putPos).Line)
	}
}
