package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// SyncCheck flags reads of a symmetric object that can observe an incomplete
// one-sided write: a shmem Put/IPut/atomic update followed on some path by a
// Get (or other read) of the same symmetric object with no intervening
// Quiet/Fence/Barrier or collective. This is the contract of paper §IV-B —
// OpenSHMEM puts complete locally; remote visibility requires an explicit
// completion operation, which the CAF translation inserts and hand-written
// hybrid code must not forget.
//
// The analysis is intraprocedural and keyed by the symmetric-handle
// expression. Calls the analyzer cannot see through (module-local helpers,
// function values) conservatively count as completion points, so findings
// are high-confidence straight-line bugs.
var SyncCheck = &Analyzer{
	Name: "synccheck",
	Doc:  "reads of symmetric data racing un-quieted one-sided writes",
	Run:  runSyncCheck,
}

// pendingWrites maps a symmetric-object key to the position of the oldest
// outstanding (un-quieted) write to it on the current path.
type pendingWrites map[string]token.Pos

func (s pendingWrites) clone() pendingWrites {
	out := make(pendingWrites, len(s))
	for k, v := range s {
		out[k] = v
	}
	return out
}

func (s pendingWrites) union(o pendingWrites) {
	for k, v := range o {
		if old, ok := s[k]; !ok || v < old {
			s[k] = v
		}
	}
}

func runSyncCheck(pass *Pass) {
	pass.funcBodies(func(name string, body *ast.BlockStmt) {
		w := &syncWalker{pass: pass}
		w.walkStmt(body, pendingWrites{})
	})
}

type syncWalker struct {
	pass *Pass
}

// shmem.PE methods that issue one-sided writes needing Quiet for remote
// completion (or whose update bypasses the ordered put stream, for AMOs),
// with the index of their Sym argument.
var shmemWriteMethods = map[string]int{
	"PutMem": 1, "IPutMem": 1, "PutMemV": 1,
	"Swap": 1, "CompareSwap": 1, "FetchAdd": 1, "FetchInc": 1, "Add": 1,
	"FetchAnd": 1, "FetchOr": 1, "FetchXor": 1, "AtomicSet": 1,
}

// Package-level generic write functions, with the index of their Sym argument.
var shmemWriteFuncs = map[string]int{"Put": 2, "P": 2, "IPut": 2}

// shmem.PE methods that read symmetric data, with their Sym argument index.
var shmemReadMethods = map[string]int{
	"GetMem": 1, "IGetMem": 1, "GetMemV": 1, "AtomicFetch": 1, "Ptr": 0,
}

var shmemReadFuncs = map[string]int{"Get": 2, "G": 2, "IGet": 2}

// shmem.PE methods that complete all outstanding writes.
var shmemSyncMethods = map[string]bool{
	"Quiet": true, "Fence": true, "Barrier": true,
	"Malloc": true, "Free": true, "Broadcast": true,
}

var shmemSyncFuncs = map[string]bool{"ToAll": true, "FCollect": true, "Collect": true}

// shmem.PE (and related) methods with no effect on outstanding writes.
var shmemBenignMethods = map[string]bool{
	"MyPE": true, "NumPEs": true, "Clock": true, "World": true, "Pgas": true,
	"WaitUntil64": true, "SetLock": true, "ClearLock": true, "TestLock": true,
	"At": true, "IsZero": true,
}

func (w *syncWalker) walkStmt(s ast.Stmt, st pendingWrites) pendingWrites {
	switch x := s.(type) {
	case *ast.BlockStmt:
		for _, sub := range x.List {
			st = w.walkStmt(sub, st)
		}
		return st
	case *ast.IfStmt:
		if x.Init != nil {
			st = w.walkStmt(x.Init, st)
		}
		w.applyExpr(x.Cond, st)
		thenSt := w.walkStmt(x.Body, st.clone())
		if x.Else != nil {
			elseSt := w.walkStmt(x.Else, st.clone())
			thenSt.union(elseSt)
			return thenSt
		}
		st.union(thenSt)
		return st
	case *ast.ForStmt:
		if x.Init != nil {
			st = w.walkStmt(x.Init, st)
		}
		w.applyExpr(x.Cond, st)
		// Two passes propagate loop-carried pending writes (a put at the
		// bottom of the body racing a read at the top of the next iteration).
		once := w.walkStmt(x.Body, st.clone())
		if x.Post != nil {
			once = w.walkStmt(x.Post, once)
		}
		once.union(st)
		twice := w.walkStmt(x.Body, once.clone())
		if x.Post != nil {
			twice = w.walkStmt(x.Post, twice)
		}
		twice.union(once)
		return twice
	case *ast.RangeStmt:
		w.applyExpr(x.X, st)
		once := w.walkStmt(x.Body, st.clone())
		once.union(st)
		twice := w.walkStmt(x.Body, once.clone())
		twice.union(once)
		return twice
	case *ast.SwitchStmt:
		if x.Init != nil {
			st = w.walkStmt(x.Init, st)
		}
		w.applyExpr(x.Tag, st)
		return w.walkCases(x.Body, st)
	case *ast.TypeSwitchStmt:
		if x.Init != nil {
			st = w.walkStmt(x.Init, st)
		}
		return w.walkCases(x.Body, st)
	case *ast.SelectStmt:
		return w.walkCases(x.Body, st)
	case *ast.LabeledStmt:
		return w.walkStmt(x.Stmt, st)
	case *ast.DeferStmt, *ast.GoStmt:
		// Deferred calls run at return, goroutines concurrently: neither
		// completes writes at this program point. Argument evaluation happens
		// now, though.
		if d, ok := x.(*ast.DeferStmt); ok {
			for _, a := range d.Call.Args {
				w.applyExpr(a, st)
			}
		} else if g, ok := x.(*ast.GoStmt); ok {
			for _, a := range g.Call.Args {
				w.applyExpr(a, st)
			}
		}
		return st
	case nil:
		return st
	default:
		w.applyExpr(x, st)
		return st
	}
}

func (w *syncWalker) walkCases(body *ast.BlockStmt, st pendingWrites) pendingWrites {
	merged := st.clone() // the no-case-taken path
	for _, c := range body.List {
		caseSt := st.clone()
		switch cl := c.(type) {
		case *ast.CaseClause:
			for _, e := range cl.List {
				w.applyExpr(e, caseSt)
			}
			for _, sub := range cl.Body {
				caseSt = w.walkStmt(sub, caseSt)
			}
		case *ast.CommClause:
			if cl.Comm != nil {
				caseSt = w.walkStmt(cl.Comm, caseSt)
			}
			for _, sub := range cl.Body {
				caseSt = w.walkStmt(sub, caseSt)
			}
		}
		merged.union(caseSt)
	}
	return merged
}

// applyExpr applies the effects of every call inside n to st, in order.
func (w *syncWalker) applyExpr(n ast.Node, st pendingWrites) {
	stmtCalls(n, func(call *ast.CallExpr) { w.applyCall(call, st) })
}

func (w *syncWalker) applyCall(call *ast.CallExpr, st pendingWrites) {
	pass := w.pass
	fn := pass.callee(call)
	if fn == nil {
		// Type conversion or builtin: no effect. Anything else unresolved is
		// an indirect call that could complete writes — assume it does.
		if tv, ok := pass.Pkg.Info.Types[call.Fun]; ok && tv.IsType() {
			return
		}
		if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
			if _, isBuiltin := pass.Pkg.Info.Uses[id].(*types.Builtin); isBuiltin {
				return
			}
		}
		clear(st)
		return
	}

	onPE := isMethodOf(fn, shmemPath, "PE", fn.Name()) || isMethodOf(fn, shmemPath, "Sym", fn.Name())
	pkgFunc := fn.Pkg() != nil && fn.Pkg().Path() == shmemPath && recvNamed(fn) == nil

	switch {
	case onPE && shmemWriteMethods[fn.Name()] > 0:
		w.recordWrite(call, shmemWriteMethods[fn.Name()], st)
	case pkgFunc && shmemWriteFuncs[fn.Name()] > 0:
		w.recordWrite(call, shmemWriteFuncs[fn.Name()], st)
	case onPE && fn.Name() == "Ptr":
		w.checkRead(call, 0, st)
	case onPE && shmemReadMethods[fn.Name()] > 0:
		w.checkRead(call, shmemReadMethods[fn.Name()], st)
	case pkgFunc && shmemReadFuncs[fn.Name()] > 0:
		w.checkRead(call, shmemReadFuncs[fn.Name()], st)
	case onPE && shmemSyncMethods[fn.Name()]:
		clear(st)
	case pkgFunc && shmemSyncFuncs[fn.Name()]:
		clear(st)
	case onPE || pkgFunc || shmemBenignMethods[fn.Name()] && fn.Pkg() != nil && fn.Pkg().Path() == shmemPath:
		// Other shmem API (WaitUntil64, locks, accessors): no effect on the
		// caller's outstanding writes.
	case fn.Pkg() == nil:
		// Universe-scope methods (error.Error): no effect.
	case pass.Pkg.Types != nil && fn.Pkg() == pass.Pkg.Types:
		// A helper in the package under analysis may quiet internally.
		clear(st)
	case isModulePath(fn.Pkg().Path()):
		// Other module packages (caf runtime, pgas substrate) may complete
		// communication internally.
		clear(st)
	default:
		// Standard library: cannot touch the communication layer.
	}
}

func isModulePath(path string) bool {
	return path == "cafshmem" || len(path) > len("cafshmem/") && path[:len("cafshmem/")] == "cafshmem/"
}

func (w *syncWalker) recordWrite(call *ast.CallExpr, symArg int, st pendingWrites) {
	if symArg >= len(call.Args) {
		return
	}
	key := w.pass.exprKey(call.Args[symArg])
	if _, ok := st[key]; !ok {
		st[key] = call.Pos()
	}
}

func (w *syncWalker) checkRead(call *ast.CallExpr, symArg int, st pendingWrites) {
	if symArg >= len(call.Args) {
		return
	}
	sym := call.Args[symArg]
	key := w.pass.exprKey(sym)
	if putPos, ok := st[key]; ok {
		w.pass.Reportf(call.Pos(), "read of %s before completing the one-sided write at line %d (missing Quiet/Fence/Barrier)",
			types.ExprString(sym), w.pass.Pkg.Fset.Position(putPos).Line)
	}
}
