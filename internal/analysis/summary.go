package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// summary.go defines the per-function effect summary — the element of the
// effects lattice callgraph.go computes bottom-up over SCCs. A summary
// answers, for one function, the questions each analyzer would otherwise
// answer "unknown, assume the worst" at every module-local call:
//
//   - synccheck: which pending one-sided operations does a call create
//     (blocking put / NBI put / context put, mapped to the caller's argument
//     expressions through parameter indices), which completion points does it
//     execute (PE-level quiet, fence, a context's quiet), and which symmetric
//     arguments does it read without first completing them?
//   - lockcheck: which locks does it acquire and leave held, which does it
//     release on behalf of the caller?
//   - collectivecheck: which collectives does it execute unconditionally?
//   - deadlockcheck: which signal/event waits and notifies does it perform,
//     and which lock-order edges does it induce?
//
// Parameter mapping uses virtual indices: 0 is the method receiver, 1..N the
// declared parameters. An effect on an object that is not a parameter (a
// struct field, a local allocation) is recorded unmapped: the caller cannot
// key it, so keyed checks ignore it — the conservative, false-positive-free
// direction.

// markerPos encodes virtual parameter index i as a negative token.Pos so the
// sync walker can seed the pending maps with "the caller may have a pending
// write on this parameter" markers and tell them apart from real put sites.
func markerPos(i int) token.Pos { return token.Pos(-(i + 1)) }

func markerParam(p token.Pos) (int, bool) {
	if p >= 0 {
		return 0, false
	}
	return int(-p) - 1, true
}

// effect is a parameter-mapped effect site.
type effect struct {
	Param int // virtual parameter index; -1 = unmapped
	Pos   token.Pos
}

// ctxEffect maps a context-scoped effect: the *Ctx parameter plus the object
// parameter (a Sym for puts, a source buffer for pins).
type ctxEffect struct {
	CtxParam int
	ObjParam int
	Pos      token.Pos
}

// lockEffect is a net lock acquisition or release escaping a function.
type lockEffect struct {
	LockParam int    // virtual index of the lock object; -1 = unmapped
	ImgParam  int    // virtual index of the image/index argument; -1 = constant or unmapped
	ImgConst  string // exprKey rendering when the image argument is constant ("" = unmapped)
	Must      bool   // effect occurs on every path (vs. only some)
	Canon     string // cross-function lock identity ("" when not canonicalizable)
	Pos       token.Pos
}

// lockEdge is a lock-order edge: while holding From, the code acquires To.
// Both endpoints are canonical lock identities.
type lockEdge struct {
	From, To         string
	FromPos, ToPos   token.Pos
	FromName, ToName string // human-readable lock names for diagnostics
}

// collEffect is a collective executed unconditionally by a function.
type collEffect struct {
	Name string
	Pos  token.Pos
}

// syncEffect is a signal-class wait or notify. Classes pair a wait with the
// notifies that can satisfy it: "caf.Signal", "caf.Event", "shmem.signal"
// (put-with-signal, AMOs, WaitUntil-family), and "syncimages".
type syncEffect struct {
	Class string
	Pos   token.Pos
}

// Summary is one function's effect summary.
type Summary struct {
	// CompletesAll marks a call to something unresolvable inside: the
	// function may complete any outstanding operation, contexts included —
	// the pre-interprocedural model of every module-local call.
	CompletesAll bool

	// Completion points executed on at least one path. Clearing caller state
	// on a may-completion can only mask findings, never invent them.
	QuietsDefault bool     // PE-level quiet/barrier/collective
	Fences        bool     // fence: blocking puts only
	QuietsCtx     []effect // quiets the context passed as this parameter
	QuietsAnyCtx  bool     // quiets a context the caller cannot identify

	// Pending operations possibly still outstanding when the function
	// returns, keyed by parameter.
	PutsBlocking    []effect
	PutsNBI         []effect
	PinsNBISrc      []effect
	PutsCtx         []ctxEffect
	PinsCtxSrc      []ctxEffect
	CreatesUnmapped bool // pending op on a non-parameter object at return

	// Reads of symmetric parameters (and writes to buffer parameters) that
	// can observe caller-pending state: not preceded by a completion point on
	// every path through the function.
	ReadsSym  []effect
	WritesBuf []effect

	// Net lock effects visible to the caller.
	Acquires   []lockEffect
	Releases   []lockEffect
	HasLockOps bool // any lock operation inside (gates lockcheck's walker)
	LockEdges  []lockEdge

	// Collectives executed unconditionally (not under any local branch).
	Collectives []collEffect

	// Signal-class waits and notifies, including transitive ones.
	Waits    []syncEffect
	Notifies []syncEffect
}

// opaqueSummary is the pre-interprocedural assumption: may complete
// anything, creates nothing the caller can track.
func opaqueSummary() *Summary {
	return &Summary{CompletesAll: true, CreatesUnmapped: true}
}

// summaryAnalyzer is the synthetic analyzer identity used for summarize-mode
// passes; their diagnostics are discarded.
var summaryAnalyzer = &Analyzer{Name: "summary", Doc: "internal summary computation"}

// virtualParams returns fn's parameters under virtual indexing: slot 0 is
// the receiver (nil for package-level functions), slots 1..N the parameters.
func virtualParams(fn *types.Func) []*types.Var {
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return nil
	}
	out := []*types.Var{sig.Recv()}
	for i := 0; i < sig.Params().Len(); i++ {
		out = append(out, sig.Params().At(i))
	}
	return out
}

// paramObjKey renders a parameter object exactly as writeExprKey renders an
// identifier resolving to it, so seeded marker keys match use sites.
func paramObjKey(v *types.Var) string {
	return v.Name() + "@" + itoa(int(v.Pos()))
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	neg := n < 0
	if neg {
		n = -n
	}
	var buf [20]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	if neg {
		i--
		buf[i] = '-'
	}
	return string(buf[i:])
}

// argForParam resolves a virtual parameter index of the callee to the
// caller-side expression carrying that argument, or nil.
func argForParam(call *ast.CallExpr, idx int) ast.Expr {
	if idx == 0 {
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
			return sel.X
		}
		return nil
	}
	if idx >= 1 && idx-1 < len(call.Args) {
		return call.Args[idx-1]
	}
	return nil
}

func isSymVar(v *types.Var) bool   { return isSymType(v.Type()) }
func isCtxVar(v *types.Var) bool   { return isCtxType(v.Type()) }
func isSliceVar(v *types.Var) bool {
	_, ok := v.Type().Underlying().(*types.Slice)
	return ok
}

func isCtxType(t types.Type) bool {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Ctx" && obj.Pkg() != nil && obj.Pkg().Path() == shmemPath
}

// summarize computes fn's summary from its body, consulting the summaries
// already computed for its callees (in-SCC callees read whatever the current
// fixpoint round holds).
func (p *Program) summarize(fn *types.Func) *Summary {
	site := p.decls[fn]
	if site == nil {
		return nil
	}
	s := &Summary{}
	pass := &Pass{Analyzer: summaryAnalyzer, Pkg: site.pkg, Prog: p}
	summarizeSync(pass, site, s)
	summarizeLocks(pass, site, s)
	summarizeCollectives(pass, site, s)
	summarizeSyncEffects(pass, site, s)
	normalizeSummary(s)
	return s
}

// summarizeSync runs the sync walker in summarize mode: parameter markers
// seeded into the pending maps, effects recorded instead of reported.
func summarizeSync(pass *Pass, site *declSite, s *Summary) {
	w := &syncWalker{pass: pass, sum: s, paramIdx: map[string]int{}, ctxPut: map[string]ctxEffect{}, ctxPin: map[string]ctxEffect{}}
	st := newSyncState()
	for i, v := range virtualParams(site.fn) {
		if v == nil || v.Name() == "" || v.Name() == "_" {
			continue
		}
		k := paramObjKey(v)
		w.paramIdx[k] = i
		if isSymVar(v) {
			st.writes[k] = markerPos(i)
			st.nbi[k] = markerPos(i)
		}
		if isSliceVar(v) {
			st.nbiSrc[k] = markerPos(i)
		}
	}
	w.collectDeferredCompletions(site.decl.Body)
	end := w.walkStmt(site.decl.Body, st)
	w.noteReturn(end)
}

// summarizeCollectives records collectives executed unconditionally — at
// statement nesting depth zero, outside any branch or loop — either directly
// or through a callee whose summary exposes them.
func summarizeCollectives(pass *Pass, site *declSite, s *Summary) {
	cw := &collWalker{pass: pass}
	var visit func(stmts []ast.Stmt)
	record := func(name string, pos token.Pos) {
		for _, c := range s.Collectives {
			if c.Name == name {
				return
			}
		}
		if len(s.Collectives) < 8 {
			s.Collectives = append(s.Collectives, collEffect{Name: name, Pos: pos})
		}
	}
	visit = func(stmts []ast.Stmt) {
		for _, st := range stmts {
			switch x := st.(type) {
			case *ast.BlockStmt:
				visit(x.List)
			case *ast.LabeledStmt:
				visit([]ast.Stmt{x.Stmt})
			case *ast.ExprStmt, *ast.AssignStmt, *ast.ReturnStmt, *ast.DeclStmt, *ast.IncDecStmt:
				stmtCalls(st, func(call *ast.CallExpr) {
					if name, ok := cw.collectiveName(call); ok {
						record(name, call.Pos())
						return
					}
					if fn := pass.callee(call); fn != nil {
						if sum := pass.summaryOf(fn); sum != nil {
							for _, c := range sum.Collectives {
								record(c.Name, call.Pos())
							}
						}
					}
				})
			default:
				// Branches, loops, defers, selects: conditional territory.
			}
		}
	}
	visit(site.decl.Body.List)
}

// summarizeSyncEffects collects signal-class waits and notifies: direct API
// calls plus the transitive effects of resolved callees. Notifies inside
// escaping function literals are included (they can only mask findings);
// waits inside literals are excluded (the literal might never run).
func summarizeSyncEffects(pass *Pass, site *declSite, s *Summary) {
	collectSyncEffects(pass, site.decl.Body, true,
		func(e syncEffect) { s.Waits = appendSyncEffect(s.Waits, e) },
		func(e syncEffect) { s.Notifies = appendSyncEffect(s.Notifies, e) })
}

func appendSyncEffect(list []syncEffect, e syncEffect) []syncEffect {
	for _, have := range list {
		if have.Class == e.Class {
			return list
		}
	}
	if len(list) >= 8 {
		return list
	}
	return append(list, e)
}

// collectSyncEffects walks body for wait/notify effects. When skipLitWaits
// is true, waits found inside nested function literals are dropped.
func collectSyncEffects(pass *Pass, body ast.Node, skipLitWaits bool, wait, notify func(syncEffect)) {
	var walk func(n ast.Node, inLit bool)
	walk = func(n ast.Node, inLit bool) {
		ast.Inspect(n, func(n ast.Node) bool {
			if fl, ok := n.(*ast.FuncLit); ok {
				walk(fl.Body, true)
				return false
			}
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := pass.callee(call)
			if fn == nil {
				return true
			}
			ws, ns := syncEffectsOfCall(pass, fn, call)
			for _, e := range ns {
				notify(e)
			}
			if !(inLit && skipLitWaits) {
				for _, e := range ws {
					wait(e)
				}
			}
			return true
		})
	}
	walk(body, false)
}

// syncEffectsOfCall classifies one resolved call's wait/notify effects:
// the direct API surface plus the callee's summarized (transitive) effects.
func syncEffectsOfCall(pass *Pass, fn *types.Func, call *ast.CallExpr) (waits, notifies []syncEffect) {
	pos := call.Pos()
	name := fn.Name()
	switch {
	case isMethodOf(fn, shmemPath, "PE", name):
		switch name {
		case "PutSignal", "PutSignalNBI", "AtomicSet", "Add", "FetchAdd", "FetchInc",
			"Swap", "CompareSwap", "FetchAnd", "FetchOr", "FetchXor":
			notifies = append(notifies, syncEffect{Class: "shmem.signal", Pos: pos})
		case "WaitUntil64", "SignalWaitUntil", "WaitUntilStat":
			waits = append(waits, syncEffect{Class: "shmem.signal", Pos: pos})
		default:
			// Any one-sided write can satisfy a wait_until spinning on the
			// written word (the canonical put+quiet / wait_until ping-pong),
			// so every put counts as a generic-signal producer.
			if shmemWriteMethods[name] > 0 || isNBIWriteMethod(name) {
				notifies = append(notifies, syncEffect{Class: "shmem.signal", Pos: pos})
			}
		}
	case fn.Pkg() != nil && fn.Pkg().Path() == shmemPath && recvNamed(fn) == nil:
		if shmemWriteFuncs[name] > 0 || isNBIWriteFunc(name) {
			notifies = append(notifies, syncEffect{Class: "shmem.signal", Pos: pos})
		}
	case isMethodOf(fn, shmemPath, "Ctx", name):
		if name == "PutSignalNBI" || name == "PutMemNBI" {
			notifies = append(notifies, syncEffect{Class: "shmem.signal", Pos: pos})
		}
	case isMethodOf(fn, cafPath, "Signal", name):
		switch name {
		case "Notify":
			notifies = append(notifies, syncEffect{Class: "caf.Signal", Pos: pos})
		case "Wait", "WaitStat":
			waits = append(waits, syncEffect{Class: "caf.Signal", Pos: pos})
		}
	case isMethodOf(fn, cafPath, "Coarray", name):
		if name == "PutSignalAsync" || name == "PutFullSignalAsync" {
			notifies = append(notifies, syncEffect{Class: "caf.Signal", Pos: pos})
		} else if len(name) >= 3 && name[:3] == "Put" {
			// Coarray puts land in partner memory like any one-sided write.
			notifies = append(notifies, syncEffect{Class: "shmem.signal", Pos: pos})
		}
	case isMethodOf(fn, cafPath, "Event", name):
		switch name {
		case "Post":
			notifies = append(notifies, syncEffect{Class: "caf.Event", Pos: pos})
		case "Wait":
			waits = append(waits, syncEffect{Class: "caf.Event", Pos: pos})
		}
	case isMethodOf(fn, cafPath, "Image", name):
		if name == "SyncImages" || name == "SyncImagesStat" {
			waits = append(waits, syncEffect{Class: "syncimages", Pos: pos})
			notifies = append(notifies, syncEffect{Class: "syncimages", Pos: pos})
		}
	default:
		if sum := pass.summaryOf(fn); sum != nil {
			for _, e := range sum.Waits {
				waits = append(waits, syncEffect{Class: e.Class, Pos: pos})
			}
			for _, e := range sum.Notifies {
				notifies = append(notifies, syncEffect{Class: e.Class, Pos: pos})
			}
		}
	}
	return waits, notifies
}

// notifySatisfies reports whether a notify of class n can satisfy a wait of
// class w. The generic shmem-level signal machinery (AMOs, put-with-signal)
// backs every higher-level primitive except the counted syncimages protocol.
func notifySatisfies(w, n string) bool {
	if w == n {
		return true
	}
	if w == "syncimages" || n == "syncimages" {
		return false
	}
	return n == "shmem.signal" || w == "shmem.signal"
}

// normalizeSummary sorts and dedupes the summary's slices so fixpoint
// comparison (reflect.DeepEqual) is order-insensitive.
func normalizeSummary(s *Summary) {
	sortEffects := func(es []effect) []effect {
		sort.Slice(es, func(i, j int) bool {
			if es[i].Param != es[j].Param {
				return es[i].Param < es[j].Param
			}
			return es[i].Pos < es[j].Pos
		})
		out := es[:0]
		for i, e := range es {
			if i > 0 && e.Param == es[i-1].Param {
				continue
			}
			out = append(out, e)
		}
		return out
	}
	s.PutsBlocking = sortEffects(s.PutsBlocking)
	s.PutsNBI = sortEffects(s.PutsNBI)
	s.PinsNBISrc = sortEffects(s.PinsNBISrc)
	s.ReadsSym = sortEffects(s.ReadsSym)
	s.WritesBuf = sortEffects(s.WritesBuf)
	s.QuietsCtx = sortEffects(s.QuietsCtx)
	sort.Slice(s.PutsCtx, func(i, j int) bool {
		a, b := s.PutsCtx[i], s.PutsCtx[j]
		if a.CtxParam != b.CtxParam {
			return a.CtxParam < b.CtxParam
		}
		return a.ObjParam < b.ObjParam
	})
	sort.Slice(s.PinsCtxSrc, func(i, j int) bool {
		a, b := s.PinsCtxSrc[i], s.PinsCtxSrc[j]
		if a.CtxParam != b.CtxParam {
			return a.CtxParam < b.CtxParam
		}
		return a.ObjParam < b.ObjParam
	})
	sort.Slice(s.Waits, func(i, j int) bool { return s.Waits[i].Class < s.Waits[j].Class })
	sort.Slice(s.Notifies, func(i, j int) bool { return s.Notifies[i].Class < s.Notifies[j].Class })
	sort.Slice(s.Collectives, func(i, j int) bool { return s.Collectives[i].Name < s.Collectives[j].Name })
	sort.Slice(s.LockEdges, func(i, j int) bool {
		a, b := s.LockEdges[i], s.LockEdges[j]
		if a.From != b.From {
			return a.From < b.From
		}
		return a.To < b.To
	})
	sort.Slice(s.Acquires, func(i, j int) bool {
		a, b := s.Acquires[i], s.Acquires[j]
		if a.LockParam != b.LockParam {
			return a.LockParam < b.LockParam
		}
		return a.ImgParam < b.ImgParam
	})
	sort.Slice(s.Releases, func(i, j int) bool {
		a, b := s.Releases[i], s.Releases[j]
		if a.LockParam != b.LockParam {
			return a.LockParam < b.LockParam
		}
		return a.ImgParam < b.ImgParam
	})
}
