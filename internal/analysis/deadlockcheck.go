package analysis

import (
	"go/ast"
	"sort"
)

// DeadlockCheck is the purely interprocedural analyzer: it consumes the
// effect summaries (summary.go) and the module-wide lock-order edges
// (callgraph.go) to flag two whole-program deadlock shapes the
// per-function checkers cannot see:
//
//  1. Unmatched waits. A signal-class wait (caf.Signal.Wait, caf.Event.Wait,
//     shmem WaitUntil/SignalWaitUntil, and anything that reaches one through
//     helpers) blocks until a partner image issues the matching notify. In an
//     SPMD package where NO function — directly or transitively — issues a
//     notify that can satisfy the wait's class, no partner ever will: every
//     image parks forever. Notifies are matched per class (a caf.Event wait
//     needs an Event.Post or the generic shmem signal machinery behind it;
//     the counted SyncImages protocol only pairs with itself).
//
//  2. Lock-order cycles. Each function's summary carries the lock-order
//     edges its acquisitions induce (holding A while acquiring B), with locks
//     canonicalized to package-level variables or struct fields so edges
//     compare across functions and packages. If the union of all edges
//     contains a cycle, two images taking the two paths in opposite order
//     deadlock on the MCS queue — the classic ABBA, invisible to any
//     single-function view.
//
// Both rules only fire with the interprocedural Program available; without
// summaries the analyzer stays silent rather than guess.
var DeadlockCheck = &Analyzer{
	Name: "deadlockcheck",
	Doc:  "signal waits with no reachable notify; cross-function lock-order cycles",
	Run:  runDeadlockCheck,
}

func runDeadlockCheck(pass *Pass) {
	if pass.Prog == nil {
		return
	}
	checkUnmatchedWaits(pass)
	checkLockCycles(pass)
}

// checkUnmatchedWaits reports wait sites whose class no notify in the
// package can satisfy. The notify set is package-wide: in SPMD code every
// image runs the same binary, so the partner's notify — wherever it lives,
// including inside helpers and escaping closures — appears somewhere in the
// same package's call-reachable code.
func checkUnmatchedWaits(pass *Pass) {
	notifies := map[string]bool{}
	pass.funcBodies(func(name string, body *ast.BlockStmt) {
		collectSyncEffects(pass, body, false,
			func(syncEffect) {},
			func(e syncEffect) { notifies[e.Class] = true })
	})
	waitName := map[string]string{
		"caf.Signal":   "caf signal (Signal.Notify or a put-with-signal)",
		"caf.Event":    "caf event (Event.Post)",
		"shmem.signal": "shmem signal (PutSignal or an atomic update)",
		"syncimages":   "SyncImages on the partner image",
	}
	pass.funcBodies(func(name string, body *ast.BlockStmt) {
		collectSyncEffects(pass, body, true,
			func(e syncEffect) {
				for n := range notifies {
					if notifySatisfies(e.Class, n) {
						return
					}
				}
				pass.Reportf(e.Pos,
					"wait on a %s class signal, but no code in this package ever issues the matching notify (%s): every image blocks forever",
					e.Class, waitName[e.Class])
			},
			func(syncEffect) {})
	})
}

// checkLockCycles reports acquisitions that complete a cycle in the
// module-wide lock-order graph. Only edges whose acquiring side is in the
// package under analysis are reported, so each cycle surfaces where the
// code can be fixed and exactly once per package.
func checkLockCycles(pass *Pass) {
	edges := pass.Prog.LockEdges()
	if len(edges) == 0 {
		return
	}
	adj := map[string]map[string]bool{}
	for _, e := range edges {
		if adj[e.From] == nil {
			adj[e.From] = map[string]bool{}
		}
		adj[e.From][e.To] = true
	}
	reaches := func(from, to string) bool {
		seen := map[string]bool{from: true}
		work := []string{from}
		for len(work) > 0 {
			n := work[0]
			work = work[1:]
			for next := range adj[n] {
				if next == to {
					return true
				}
				if !seen[next] {
					seen[next] = true
					work = append(work, next)
				}
			}
		}
		return false
	}
	// Sort for deterministic reporting, dedupe by (From, To).
	sort.Slice(edges, func(i, j int) bool {
		a, b := edges[i], edges[j]
		if a.From != b.From {
			return a.From < b.From
		}
		return a.To < b.To
	})
	type pair struct{ from, to string }
	seen := map[pair]bool{}
	for _, e := range edges {
		p := pair{e.From, e.To}
		if seen[p] {
			continue
		}
		seen[p] = true
		if !pass.posInPackage(e.ToPos) {
			continue
		}
		if reaches(e.To, e.From) {
			pass.Reportf(e.ToPos,
				"acquiring lock %s while holding lock %s completes a lock-order cycle across functions: two images taking the paths in opposite order deadlock",
				e.ToName, e.FromName)
		}
	}
}
