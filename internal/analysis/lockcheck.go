package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// LockCheck verifies acquire/release pairing for both lock APIs in the
// repository: OpenSHMEM global logical locks (shmem.PE.SetLock/ClearLock/
// TestLock) and CAF coarray locks (caf.Lock.Acquire/Release/TryAcquire, the
// paper's MCS adaptation of §IV-D). It reports, per function:
//
//   - a return path on which a lock acquired in this function is still held
//     and has no deferred release (leaked lock: every other PE queueing on
//     the MCS tail deadlocks);
//   - a release of a lock that is not held on any path through the function
//     (ClearLock by a non-holder panics at runtime; the static check moves
//     that to analysis time);
//   - acquiring a lock already held on every path (self-deadlock for the
//     global lock, a standard-mandated error for coarray locks).
//
// The STAT-bearing variants (caf.Lock.AcquireStat/ReleaseStat, the Fortran
// 2018 failed-image forms) are lock operations too, with one twist: after
// AcquireStat the lock is held only on the paths where the returned Stat is
// StatOK. The walker tracks the comparison — a branch taken on
// "stat != StatOK" does not hold the lock (so an error-path early return
// without ReleaseStat is correct), while the success path does (so an early
// return that skips ReleaseStat there is still flagged).
//
// Functions that contain releases but no acquires are treated as release
// helpers and skipped, as are the caf.Lock methods themselves (the
// implementation delegates between its own variants). The per-function walk
// is keyed by the (lock expression, index/image expression) pair; module-
// local calls resolve through effect summaries (summary.go), so a helper
// that acquires on the caller's behalf makes the caller accountable for the
// release, a balanced helper contributes nothing, and holding one lock
// across a call that acquires another records a lock-order edge for
// deadlockcheck's cycle detection.
var LockCheck = &Analyzer{
	Name: "lockcheck",
	Doc:  "unbalanced PGAS lock acquire/release paths",
	Run:  runLockCheck,
}

type lockInfo struct {
	must  bool // held on every path reaching here (vs. only some)
	pos   token.Pos
	canon string // cross-function lock identity ("" when not canonicalizable)
	name  string // human-readable lock name for edge diagnostics
}

type lockState map[string]lockInfo

func (s lockState) clone() lockState {
	out := make(lockState, len(s))
	for k, v := range s {
		out[k] = v
	}
	return out
}

// join merges two branch states: a lock is must-held only if held on both.
func joinLocks(a, b lockState) lockState {
	out := lockState{}
	for k, va := range a {
		if vb, ok := b[k]; ok {
			va.must = va.must && vb.must
			out[k] = va
		} else {
			va.must = false
			out[k] = va
		}
	}
	for k, vb := range b {
		if _, ok := a[k]; !ok {
			vb.must = false
			out[k] = vb
		}
	}
	return out
}

func runLockCheck(pass *Pass) {
	ownPkg := pass.Pkg.Types != nil && pass.Pkg.Types.Path() == cafPath
	pass.funcBodies(func(name string, body *ast.BlockStmt) {
		if ownPkg && lockImplMethods[name] {
			// The lock implementation itself: Acquire and AcquireStat
			// intentionally return to their caller holding the lock.
			return
		}
		w := newLockWalker(pass, nil)
		// Release-only functions are helpers operating on locks their callers
		// hold; pairing is the caller's responsibility. A call to a helper
		// whose summary shows a net acquisition counts as an acquire.
		ast.Inspect(body, func(n ast.Node) bool {
			if call, ok := n.(*ast.CallExpr); ok {
				if kind, _ := w.classify(call); kind == lockAcquire || kind == lockTry || kind == lockAcquireStat {
					w.hasAcquire = true
				} else if kind == lockNone {
					if sum := pass.summaryOf(pass.callee(call)); sum != nil && len(sum.Acquires) > 0 {
						w.hasAcquire = true
					}
				}
			}
			return true
		})
		if !w.hasAcquire {
			return
		}
		out := w.walkStmt(body, lockState{})
		if !w.terminates(body) {
			w.reportHeld(out, body.Rbrace)
		}
	})
}

func newLockWalker(pass *Pass, sum *Summary) *lockWalker {
	return &lockWalker{
		pass:     pass,
		sum:      sum,
		deferred: map[string]bool{},
		statVars: map[types.Object]statBind{},
		keyEff:   map[string]lockEffect{},
		paramObj: map[types.Object]int{},
	}
}

// summarizeLocks computes a function's net lock effects: acquisitions still
// held at return (must = held at every return), releases of locks the
// function never acquired (performed on the caller's behalf), and the
// lock-order edges its acquires induce.
func summarizeLocks(pass *Pass, site *declSite, s *Summary) {
	if site.pkg.Types != nil && site.pkg.Types.Path() == cafPath && lockImplMethods[site.fn.Name()] {
		// The MCS protocol bodies delegate between their own variants; their
		// net effect is modelled at the call site by classify, and walking
		// them here would double-count the handoff.
		s.HasLockOps = true
		return
	}
	w := newLockWalker(pass, s)
	for i, v := range virtualParams(site.fn) {
		if v != nil && v.Name() != "" && v.Name() != "_" {
			w.paramObj[v] = i
		}
	}
	out := w.walkStmt(site.decl.Body, lockState{})
	if !w.terminates(site.decl.Body) {
		w.noteLockReturn(out)
	}
	// Intersect the per-return held states: a key held (with must) at every
	// return is a must-acquire; held at any return is a may-acquire.
	seenAt := map[string]int{}
	mustAt := map[string]int{}
	for _, ret := range w.returnStates {
		for k, info := range ret {
			if w.deferred[k] {
				continue
			}
			seenAt[k]++
			if info.must {
				mustAt[k]++
			}
		}
	}
	for k, n := range seenAt {
		eff, ok := w.keyEff[k]
		if !ok {
			continue
		}
		eff.Must = mustAt[k] == len(w.returnStates) && n == len(w.returnStates)
		if eff.LockParam >= 0 || eff.Canon != "" {
			s.Acquires = append(s.Acquires, eff)
		}
	}
}

// lockImplMethods names the caf.Lock methods (and their helpers) whose bodies
// are the lock protocol itself rather than lock *usage*.
var lockImplMethods = map[string]bool{
	"Acquire": true, "Release": true, "TryAcquire": true,
	"AcquireStat": true, "ReleaseStat": true,
	"mcsAcquireAny": true, "mcsReleaseAny": true,
}

type lockOpKind int

const (
	lockNone lockOpKind = iota
	lockAcquire
	lockRelease
	lockTry
	lockAcquireStat // acquire whose returned Stat gates whether the lock is held
)

type lockWalker struct {
	pass       *Pass
	hasAcquire bool
	deferred   map[string]bool // lock keys released by defer statements
	// statVars maps the variable object bound to an AcquireStat result to the
	// lock it conditionally holds, so "if stat != StatOK" branches refine the
	// held-state. Keyed by types.Object, not name: a shadowed "stat" in a
	// nested scope is a different variable and must not overwrite the outer
	// binding.
	statVars map[types.Object]statBind

	// Summarize mode (sum != nil, driven by summary.go): effects are recorded
	// instead of reported.
	sum          *Summary
	paramObj     map[types.Object]int  // parameter object → virtual index
	keyEff       map[string]lockEffect // state key → caller-mappable effect
	returnStates []lockState
	branchDepth  int // > 0 inside any branch/loop: effects become may, not must
}

// statBind records which lock acquisition a Stat-typed variable witnesses.
type statBind struct {
	key string
	pos token.Pos
}

// classify resolves a call to a lock operation and its state key.
func (w *lockWalker) classify(call *ast.CallExpr) (lockOpKind, string) {
	fn := w.pass.callee(call)
	if fn == nil {
		return lockNone, ""
	}
	switch {
	case isMethodOf(fn, shmemPath, "PE", "SetLock"):
		return lockAcquire, w.shmemKey(call)
	case isMethodOf(fn, shmemPath, "PE", "ClearLock"):
		return lockRelease, w.shmemKey(call)
	case isMethodOf(fn, shmemPath, "PE", "TestLock"):
		return lockTry, w.shmemKey(call)
	case isMethodOf(fn, cafPath, "Lock", "Acquire"):
		return lockAcquire, w.cafKey(call)
	case isMethodOf(fn, cafPath, "Lock", "Release"):
		return lockRelease, w.cafKey(call)
	case isMethodOf(fn, cafPath, "Lock", "TryAcquire"):
		return lockTry, w.cafKey(call)
	case isMethodOf(fn, cafPath, "Lock", "AcquireStat"):
		return lockAcquireStat, w.cafKey(call)
	case isMethodOf(fn, cafPath, "Lock", "ReleaseStat"):
		// Whatever Stat it returns, the lock is no longer held afterwards.
		return lockRelease, w.cafKey(call)
	}
	return lockNone, ""
}

func (w *lockWalker) shmemKey(call *ast.CallExpr) string {
	if len(call.Args) < 2 {
		return ""
	}
	return w.pass.exprKey(call.Args[0]) + "/" + w.pass.exprKey(call.Args[1])
}

func (w *lockWalker) cafKey(call *ast.CallExpr) string {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || len(call.Args) < 1 {
		return ""
	}
	return w.pass.exprKey(sel.X) + "/" + w.pass.exprKey(call.Args[0])
}

// lockName renders the key's call for messages: "lck[j]"-style.
func lockName(call *ast.CallExpr) string {
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		if len(call.Args) >= 2 {
			return types.ExprString(sel.X) + ".(" + types.ExprString(call.Args[0]) + "," + types.ExprString(call.Args[1]) + ")"
		}
		if len(call.Args) >= 1 {
			return types.ExprString(sel.X) + "[" + types.ExprString(call.Args[0]) + "]"
		}
	}
	return types.ExprString(call.Fun)
}

func (w *lockWalker) walkStmt(s ast.Stmt, st lockState) lockState {
	switch x := s.(type) {
	case *ast.BlockStmt:
		for _, sub := range x.List {
			st = w.walkStmt(sub, st)
		}
		return st
	case *ast.IfStmt:
		if x.Init != nil {
			st = w.walkStmt(x.Init, st)
		}
		// Conditional acquisition: "if pe.TestLock(...) { ... }" holds the
		// lock in the then-branch only.
		var tryKey string
		var tryPos token.Pos
		if call, ok := ast.Unparen(x.Cond).(*ast.CallExpr); ok {
			if kind, key := w.classify(call); kind == lockTry {
				tryKey, tryPos = key, call.Pos()
			}
		}
		// Stat-gated acquisition: a comparison of an AcquireStat result (or a
		// variable bound to one) against StatOK splits the held-state — the
		// lock is held exactly on the success side of the branch.
		statInfo, statEq, statOK := w.statCond(x.Cond)
		if tryKey == "" && !statOK {
			w.applyExprCalls(x.Cond, st)
		}
		thenSt := st.clone()
		elseSt := st.clone()
		if tryKey != "" {
			thenSt[tryKey] = lockInfo{must: true, pos: tryPos}
		}
		if statOK {
			if statEq { // stat == StatOK: held in then, not in else
				thenSt[statInfo.key] = lockInfo{must: true, pos: statInfo.pos}
				delete(elseSt, statInfo.key)
			} else { // stat != StatOK: not held in then, held in else
				delete(thenSt, statInfo.key)
				elseSt[statInfo.key] = lockInfo{must: true, pos: statInfo.pos}
			}
		}
		thenSt = w.walkBranch(x.Body, thenSt)
		if x.Else != nil {
			elseSt = w.walkBranch(x.Else, elseSt)
		}
		switch {
		case w.terminates(x.Body):
			return elseSt
		case x.Else != nil && w.terminates(x.Else):
			return thenSt
		default:
			return joinLocks(thenSt, elseSt)
		}
	case *ast.ForStmt:
		if x.Init != nil {
			st = w.walkStmt(x.Init, st)
		}
		w.applyExprCalls(x.Cond, st)
		body := w.walkBranch(x.Body, st.clone())
		if x.Post != nil {
			body = w.walkBranch(x.Post, body)
		}
		return joinLocks(st, body)
	case *ast.RangeStmt:
		w.applyExprCalls(x.X, st)
		body := w.walkBranch(x.Body, st.clone())
		return joinLocks(st, body)
	case *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
		return w.walkCases(s, st)
	case *ast.LabeledStmt:
		return w.walkStmt(x.Stmt, st)
	case *ast.ReturnStmt:
		w.applyExprCalls(x, st)
		w.reportHeld(st, x.Pos())
		return st
	case *ast.AssignStmt:
		// "stat := lck.AcquireStat(j)": bind the variable to the acquisition
		// so later StatOK comparisons can refine the held-state. Until (and
		// unless) such a comparison happens, the lock counts as held — an
		// unchecked Stat must not hide a leak.
		if len(x.Lhs) == 1 && len(x.Rhs) == 1 {
			if call, ok := ast.Unparen(x.Rhs[0]).(*ast.CallExpr); ok {
				if kind, key := w.classify(call); kind == lockAcquireStat && key != "" {
					if id, ok := x.Lhs[0].(*ast.Ident); ok {
						if obj := w.pass.Pkg.Info.ObjectOf(id); obj != nil {
							w.statVars[obj] = statBind{key: key, pos: call.Pos()}
						}
					}
				}
			}
		}
		w.applyStmtCalls(x, st)
		return st
	case *ast.DeferStmt:
		w.recordDefer(x)
		return st
	case *ast.GoStmt:
		return st
	case nil:
		return st
	default:
		w.applyStmtCalls(x, st)
		return st
	}
}

func (w *lockWalker) walkCases(s ast.Stmt, st lockState) lockState {
	var body *ast.BlockStmt
	hasDefault := false
	switch x := s.(type) {
	case *ast.SwitchStmt:
		if x.Init != nil {
			st = w.walkStmt(x.Init, st)
		}
		w.applyExprCalls(x.Tag, st)
		body = x.Body
	case *ast.TypeSwitchStmt:
		if x.Init != nil {
			st = w.walkStmt(x.Init, st)
		}
		body = x.Body
	case *ast.SelectStmt:
		body = x.Body
	}
	var merged lockState
	for _, c := range body.List {
		caseSt := st.clone()
		var stmts []ast.Stmt
		switch cl := c.(type) {
		case *ast.CaseClause:
			if cl.List == nil {
				hasDefault = true
			}
			for _, e := range cl.List {
				w.applyExprCalls(e, caseSt)
			}
			stmts = cl.Body
		case *ast.CommClause:
			if cl.Comm == nil {
				hasDefault = true
			} else {
				caseSt = w.walkStmt(cl.Comm, caseSt)
			}
			stmts = cl.Body
		}
		for _, sub := range stmts {
			caseSt = w.walkBranch(sub, caseSt)
		}
		if merged == nil {
			merged = caseSt
		} else {
			merged = joinLocks(merged, caseSt)
		}
	}
	if merged == nil {
		return st
	}
	if !hasDefault {
		merged = joinLocks(merged, st)
	}
	return merged
}

// terminates reports whether a statement always transfers control out of the
// enclosing flow: return, panic, a terminating block, or caf.Image.FailImage
// — FAIL IMAGE never returns, and a lock held at that point is the runtime's
// takeover path to recover, not a leak.
func (w *lockWalker) terminates(s ast.Stmt) bool {
	switch x := s.(type) {
	case *ast.ReturnStmt, *ast.BranchStmt:
		return true
	case *ast.ExprStmt:
		if call, ok := x.X.(*ast.CallExpr); ok {
			if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "panic" {
				return true
			}
			if fn := w.pass.callee(call); fn != nil && isMethodOf(fn, cafPath, "Image", "FailImage") {
				return true
			}
		}
	case *ast.BlockStmt:
		if n := len(x.List); n > 0 {
			return w.terminates(x.List[n-1])
		}
	}
	return false
}

// applyStmtCalls applies lock effects of the calls in a non-control
// statement.
func (w *lockWalker) applyStmtCalls(s ast.Stmt, st lockState) {
	w.applyExprCalls(s, st)
}

func (w *lockWalker) applyExprCalls(n ast.Node, st lockState) {
	if n == nil {
		return
	}
	stmtCalls(n, func(call *ast.CallExpr) { w.applyCall(call, st) })
}

func (w *lockWalker) applyCall(call *ast.CallExpr, st lockState) {
	kind, key := w.classify(call)
	if kind == lockNone {
		w.applyLockSummary(call, st)
		return
	}
	if key == "" {
		return // unresolvable key expression: stay silent
	}
	if w.sum != nil {
		w.sum.HasLockOps = true
	}
	canon, cname := w.canonOfCall(call)
	switch kind {
	case lockAcquire, lockAcquireStat:
		// AcquireStat is held unless a StatOK comparison later proves
		// otherwise; the branch refinement in walkStmt removes it from the
		// failure path.
		if info, held := st[key]; held && info.must {
			w.pass.Reportf(call.Pos(), "lock %s acquired at line %d is acquired again without an intervening release",
				lockName(call), w.pass.Pkg.Fset.Position(info.pos).Line)
		}
		w.noteAcquire(call, key, canon, cname, st)
		st[key] = lockInfo{must: true, pos: call.Pos(), canon: canon, name: cname}
	case lockRelease:
		if _, held := st[key]; !held && !w.deferred[key] {
			if w.sum != nil {
				w.noteCallerRelease(call, key)
			} else {
				w.pass.Reportf(call.Pos(), "release of lock %s which is not acquired on this path", lockName(call))
			}
		}
		delete(st, key)
	case lockTry:
		// Result not consumed as an if-condition: the lock is possibly held
		// from here on; later releases are legitimate.
		w.noteAcquire(call, key, canon, cname, st)
		st[key] = lockInfo{must: false, pos: call.Pos(), canon: canon, name: cname}
	}
}

// noteAcquire records, in summarize mode, the lock-order edges this
// acquisition induces against every canonicalizable lock already held, plus
// the caller-mappable effect for the state key.
func (w *lockWalker) noteAcquire(call *ast.CallExpr, key, canon, cname string, st lockState) {
	if w.sum == nil {
		return
	}
	if canon != "" {
		for _, info := range st {
			if info.canon != "" && info.canon != canon {
				w.sum.LockEdges = append(w.sum.LockEdges, lockEdge{
					From: info.canon, To: canon,
					FromPos: info.pos, ToPos: call.Pos(),
					FromName: info.name, ToName: cname,
				})
			}
		}
	}
	lockExpr, imgExpr := w.operands(call)
	eff := lockEffect{LockParam: -1, ImgParam: -1, Canon: canon, Pos: call.Pos()}
	if i, ok := w.exprParam(lockExpr); ok {
		eff.LockParam = i
	}
	if i, ok := w.exprParam(imgExpr); ok {
		eff.ImgParam = i
	} else if imgExpr != nil {
		if lit, ok := ast.Unparen(imgExpr).(*ast.BasicLit); ok {
			eff.ImgConst = lit.Value
		}
	}
	w.keyEff[key] = eff
}

// noteCallerRelease records a release of a lock this function never
// acquired: the caller holds it and hands it down.
func (w *lockWalker) noteCallerRelease(call *ast.CallExpr, key string) {
	lockExpr, imgExpr := w.operands(call)
	eff := lockEffect{LockParam: -1, ImgParam: -1, Must: w.branchDepth == 0, Pos: call.Pos()}
	if i, ok := w.exprParam(lockExpr); ok {
		eff.LockParam = i
	}
	if i, ok := w.exprParam(imgExpr); ok {
		eff.ImgParam = i
	} else if imgExpr != nil {
		if lit, ok := ast.Unparen(imgExpr).(*ast.BasicLit); ok {
			eff.ImgConst = lit.Value
		}
	}
	if eff.LockParam >= 0 {
		w.sum.Releases = append(w.sum.Releases, eff)
	}
	w.sum.HasLockOps = true
}

// applyLockSummary applies a summarized callee's net lock effects at a call
// site: releases first (a helper that swaps locks releases before blocking),
// then acquisitions, with lock-order edges against the held set.
func (w *lockWalker) applyLockSummary(call *ast.CallExpr, st lockState) {
	fn := w.pass.callee(call)
	if fn == nil {
		return
	}
	sum := w.pass.summaryOf(fn)
	if sum == nil || (len(sum.Acquires) == 0 && len(sum.Releases) == 0) {
		return
	}
	if w.sum != nil {
		w.sum.HasLockOps = true
	}
	for _, eff := range sum.Releases {
		key, _, _ := w.callerLockKey(call, eff)
		if key == "" {
			continue
		}
		if eff.Must {
			delete(st, key)
		} else if info, held := st[key]; held {
			info.must = false
			st[key] = info
		}
	}
	for _, eff := range sum.Acquires {
		key, canon, cname := w.callerLockKey(call, eff)
		if canon != "" && w.sum != nil {
			for _, info := range st {
				if info.canon != "" && info.canon != canon {
					w.sum.LockEdges = append(w.sum.LockEdges, lockEdge{
						From: info.canon, To: canon,
						FromPos: info.pos, ToPos: call.Pos(),
						FromName: info.name, ToName: cname,
					})
				}
			}
		}
		if key == "" {
			continue
		}
		if info, held := st[key]; held && info.must && eff.Must {
			w.pass.Reportf(call.Pos(), "lock held since line %d is acquired again inside the call to %s",
				w.pass.Pkg.Fset.Position(info.pos).Line, fn.Name())
		}
		if w.sum != nil {
			w.keyEff[key] = lockEffect{LockParam: w.remapParam(call, eff.LockParam), ImgParam: w.remapParam(call, eff.ImgParam),
				ImgConst: eff.ImgConst, Canon: canon, Pos: call.Pos()}
		}
		st[key] = lockInfo{must: eff.Must, pos: call.Pos(), canon: canon, name: cname}
	}
}

// callerLockKey maps a callee lock effect to the caller's state key and
// canonical identity through the call's arguments.
func (w *lockWalker) callerLockKey(call *ast.CallExpr, eff lockEffect) (key, canon, cname string) {
	lockExpr := argForParam(call, eff.LockParam)
	if eff.LockParam < 0 || lockExpr == nil {
		// Not mappable into this frame; the canonical identity (a global or
		// field lock) still supports edge recording.
		if eff.Canon != "" {
			return "", eff.Canon, "lock"
		}
		return "", "", ""
	}
	imgKey := eff.ImgConst
	var imgExpr ast.Expr
	if eff.ImgParam >= 0 {
		imgExpr = argForParam(call, eff.ImgParam)
		if imgExpr == nil {
			return "", "", ""
		}
		imgKey = w.pass.exprKey(imgExpr)
	}
	key = w.pass.exprKey(lockExpr) + "/" + imgKey
	canon, cname = canonLock(w.pass, lockExpr, imgExpr, eff.ImgConst)
	if eff.Canon != "" {
		canon, cname = eff.Canon, "lock"
	}
	return key, canon, cname
}

// remapParam translates a callee parameter index to the caller's own
// parameter index when the caller forwards one of its parameters, -1
// otherwise.
func (w *lockWalker) remapParam(call *ast.CallExpr, calleeParam int) int {
	if calleeParam < 0 {
		return -1
	}
	if i, ok := w.exprParam(argForParam(call, calleeParam)); ok {
		return i
	}
	return -1
}

// exprParam resolves an expression to one of the summarized function's
// virtual parameter indices.
func (w *lockWalker) exprParam(e ast.Expr) (int, bool) {
	if e == nil || w.paramObj == nil {
		return 0, false
	}
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return 0, false
	}
	obj := w.pass.Pkg.Info.ObjectOf(id)
	if obj == nil {
		return 0, false
	}
	i, ok := w.paramObj[obj]
	return i, ok
}

// operands returns the lock expression and image/index expression of a
// classified lock call: receiver + first arg for caf.Lock methods, first two
// args for the shmem PE lock API.
func (w *lockWalker) operands(call *ast.CallExpr) (lockExpr, imgExpr ast.Expr) {
	fn := w.pass.callee(call)
	if fn == nil {
		return nil, nil
	}
	if recvNamed(fn) != nil && recvNamed(fn).Obj().Name() == "Lock" {
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok && len(call.Args) >= 1 {
			return sel.X, call.Args[0]
		}
		return nil, nil
	}
	if len(call.Args) >= 2 {
		return call.Args[0], call.Args[1]
	}
	return nil, nil
}

func (w *lockWalker) canonOfCall(call *ast.CallExpr) (string, string) {
	lockExpr, imgExpr := w.operands(call)
	return canonLock(w.pass, lockExpr, imgExpr, "")
}

// canonLock derives a cross-function identity for a lock: the package-level
// variable or struct field holding it (object identity survives across
// functions and packages) plus the image/index when it is a constant, "*"
// otherwise. Locks reached through plain locals or parameters have no
// canonical identity here — the parameter mapping covers those.
func canonLock(pass *Pass, lockExpr, imgExpr ast.Expr, imgConst string) (string, string) {
	if lockExpr == nil {
		return "", ""
	}
	obj := canonLockObj(pass, lockExpr)
	if obj == nil {
		return "", ""
	}
	img := "*"
	if imgConst != "" {
		img = imgConst
	} else if imgExpr != nil {
		switch x := ast.Unparen(imgExpr).(type) {
		case *ast.BasicLit:
			img = x.Value
		case *ast.Ident:
			if c, ok := pass.Pkg.Info.ObjectOf(x).(*types.Const); ok {
				img = c.Val().String()
			}
		case *ast.SelectorExpr:
			if c, ok := pass.Pkg.Info.ObjectOf(x.Sel).(*types.Const); ok {
				img = c.Val().String()
			}
		}
	}
	return fmt.Sprintf("%s@%d/%s", obj.Name(), obj.Pos(), img), obj.Name()
}

// canonLockObj resolves the package-level variable or struct field at the
// root of a lock expression, or nil.
func canonLockObj(pass *Pass, e ast.Expr) types.Object {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			obj := pass.Pkg.Info.ObjectOf(x)
			if v, ok := obj.(*types.Var); ok && v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
				return obj
			}
			return nil
		case *ast.SelectorExpr:
			obj := pass.Pkg.Info.ObjectOf(x.Sel)
			if v, ok := obj.(*types.Var); ok {
				if v.IsField() {
					return obj
				}
				if v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
					return obj
				}
			}
			return nil
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.UnaryExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// walkBranch walks a statement that executes conditionally relative to the
// function entry.
func (w *lockWalker) walkBranch(s ast.Stmt, st lockState) lockState {
	w.branchDepth++
	out := w.walkStmt(s, st)
	w.branchDepth--
	return out
}

// noteLockReturn records the held-state at a return point in summarize mode.
func (w *lockWalker) noteLockReturn(st lockState) {
	w.returnStates = append(w.returnStates, st.clone())
}

// statCond recognises a StatOK comparison gating an AcquireStat result:
// either the call itself ("if l.AcquireStat(j) == StatOK") or a variable
// bound to one ("stat := l.AcquireStat(j); if stat != StatOK"). It returns
// the acquisition it refines and whether the operator was == (true) or !=.
func (w *lockWalker) statCond(cond ast.Expr) (statBind, bool, bool) {
	bin, ok := ast.Unparen(cond).(*ast.BinaryExpr)
	if !ok || (bin.Op != token.EQL && bin.Op != token.NEQ) {
		return statBind{}, false, false
	}
	operand := bin.X
	switch {
	case w.isStatOK(bin.X):
		operand = bin.Y
	case w.isStatOK(bin.Y):
	default:
		return statBind{}, false, false
	}
	switch x := ast.Unparen(operand).(type) {
	case *ast.CallExpr:
		if kind, key := w.classify(x); kind == lockAcquireStat && key != "" {
			return statBind{key: key, pos: x.Pos()}, bin.Op == token.EQL, true
		}
	case *ast.Ident:
		if obj := w.pass.Pkg.Info.ObjectOf(x); obj != nil {
			if b, bound := w.statVars[obj]; bound {
				return b, bin.Op == token.EQL, true
			}
		}
	}
	return statBind{}, false, false
}

// isStatOK reports whether e denotes the caf.StatOK constant.
func (w *lockWalker) isStatOK(e ast.Expr) bool {
	var id *ast.Ident
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		id = x
	case *ast.SelectorExpr:
		id = x.Sel
	default:
		return false
	}
	obj := w.pass.Pkg.Info.Uses[id]
	c, ok := obj.(*types.Const)
	return ok && c.Name() == "StatOK" && c.Pkg() != nil && c.Pkg().Path() == cafPath
}

// recordDefer notes releases performed by defer statements (directly or
// inside an immediately-deferred closure).
func (w *lockWalker) recordDefer(d *ast.DeferStmt) {
	note := func(call *ast.CallExpr) {
		if kind, key := w.classify(call); kind == lockRelease && key != "" {
			w.deferred[key] = true
		}
	}
	note(d.Call)
	if fl, ok := d.Call.Fun.(*ast.FuncLit); ok {
		ast.Inspect(fl.Body, func(n ast.Node) bool {
			if call, ok := n.(*ast.CallExpr); ok {
				note(call)
			}
			return true
		})
	}
}

// reportHeld flags locks that are must-held at a function exit point and not
// covered by a deferred release. In summarize mode the exit state is recorded
// for the net-effect intersection instead.
func (w *lockWalker) reportHeld(st lockState, at token.Pos) {
	if w.sum != nil {
		w.noteLockReturn(st)
		return
	}
	for key, info := range st {
		if !info.must || w.deferred[key] {
			continue
		}
		w.pass.Reportf(at, "function can return while still holding the lock acquired at line %d",
			w.pass.Pkg.Fset.Position(info.pos).Line)
	}
}
