package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// LockCheck verifies acquire/release pairing for both lock APIs in the
// repository: OpenSHMEM global logical locks (shmem.PE.SetLock/ClearLock/
// TestLock) and CAF coarray locks (caf.Lock.Acquire/Release/TryAcquire, the
// paper's MCS adaptation of §IV-D). It reports, per function:
//
//   - a return path on which a lock acquired in this function is still held
//     and has no deferred release (leaked lock: every other PE queueing on
//     the MCS tail deadlocks);
//   - a release of a lock that is not held on any path through the function
//     (ClearLock by a non-holder panics at runtime; the static check moves
//     that to analysis time);
//   - acquiring a lock already held on every path (self-deadlock for the
//     global lock, a standard-mandated error for coarray locks).
//
// The STAT-bearing variants (caf.Lock.AcquireStat/ReleaseStat, the Fortran
// 2018 failed-image forms) are lock operations too, with one twist: after
// AcquireStat the lock is held only on the paths where the returned Stat is
// StatOK. The walker tracks the comparison — a branch taken on
// "stat != StatOK" does not hold the lock (so an error-path early return
// without ReleaseStat is correct), while the success path does (so an early
// return that skips ReleaseStat there is still flagged).
//
// Functions that contain releases but no acquires are treated as release
// helpers and skipped, as are the caf.Lock methods themselves (the
// implementation delegates between its own variants). The analysis is
// intraprocedural and keyed by the (lock expression, index/image expression)
// pair.
var LockCheck = &Analyzer{
	Name: "lockcheck",
	Doc:  "unbalanced PGAS lock acquire/release paths",
	Run:  runLockCheck,
}

type lockInfo struct {
	must bool // held on every path reaching here (vs. only some)
	pos  token.Pos
}

type lockState map[string]lockInfo

func (s lockState) clone() lockState {
	out := make(lockState, len(s))
	for k, v := range s {
		out[k] = v
	}
	return out
}

// join merges two branch states: a lock is must-held only if held on both.
func joinLocks(a, b lockState) lockState {
	out := lockState{}
	for k, va := range a {
		if vb, ok := b[k]; ok {
			out[k] = lockInfo{must: va.must && vb.must, pos: va.pos}
		} else {
			out[k] = lockInfo{must: false, pos: va.pos}
		}
	}
	for k, vb := range b {
		if _, ok := a[k]; !ok {
			out[k] = lockInfo{must: false, pos: vb.pos}
		}
	}
	return out
}

func runLockCheck(pass *Pass) {
	ownPkg := pass.Pkg.Types != nil && pass.Pkg.Types.Path() == cafPath
	pass.funcBodies(func(name string, body *ast.BlockStmt) {
		if ownPkg && lockImplMethods[name] {
			// The lock implementation itself: Acquire and AcquireStat
			// intentionally return to their caller holding the lock.
			return
		}
		w := &lockWalker{pass: pass, deferred: map[string]bool{}, statVars: map[string]statBind{}}
		// Release-only functions are helpers operating on locks their callers
		// hold; pairing is the caller's responsibility.
		ast.Inspect(body, func(n ast.Node) bool {
			if call, ok := n.(*ast.CallExpr); ok {
				if kind, _ := w.classify(call); kind == lockAcquire || kind == lockTry || kind == lockAcquireStat {
					w.hasAcquire = true
				}
			}
			return true
		})
		if !w.hasAcquire {
			return
		}
		out := w.walkStmt(body, lockState{})
		if !w.terminates(body) {
			w.reportHeld(out, body.Rbrace)
		}
	})
}

// lockImplMethods names the caf.Lock methods (and their helpers) whose bodies
// are the lock protocol itself rather than lock *usage*.
var lockImplMethods = map[string]bool{
	"Acquire": true, "Release": true, "TryAcquire": true,
	"AcquireStat": true, "ReleaseStat": true,
	"mcsAcquireAny": true, "mcsReleaseAny": true,
}

type lockOpKind int

const (
	lockNone lockOpKind = iota
	lockAcquire
	lockRelease
	lockTry
	lockAcquireStat // acquire whose returned Stat gates whether the lock is held
)

type lockWalker struct {
	pass       *Pass
	hasAcquire bool
	deferred   map[string]bool // lock keys released by defer statements
	// statVars maps a variable name bound to an AcquireStat result to the
	// lock it conditionally holds, so "if stat != StatOK" branches refine the
	// held-state.
	statVars map[string]statBind
}

// statBind records which lock acquisition a Stat-typed variable witnesses.
type statBind struct {
	key string
	pos token.Pos
}

// classify resolves a call to a lock operation and its state key.
func (w *lockWalker) classify(call *ast.CallExpr) (lockOpKind, string) {
	fn := w.pass.callee(call)
	if fn == nil {
		return lockNone, ""
	}
	switch {
	case isMethodOf(fn, shmemPath, "PE", "SetLock"):
		return lockAcquire, w.shmemKey(call)
	case isMethodOf(fn, shmemPath, "PE", "ClearLock"):
		return lockRelease, w.shmemKey(call)
	case isMethodOf(fn, shmemPath, "PE", "TestLock"):
		return lockTry, w.shmemKey(call)
	case isMethodOf(fn, cafPath, "Lock", "Acquire"):
		return lockAcquire, w.cafKey(call)
	case isMethodOf(fn, cafPath, "Lock", "Release"):
		return lockRelease, w.cafKey(call)
	case isMethodOf(fn, cafPath, "Lock", "TryAcquire"):
		return lockTry, w.cafKey(call)
	case isMethodOf(fn, cafPath, "Lock", "AcquireStat"):
		return lockAcquireStat, w.cafKey(call)
	case isMethodOf(fn, cafPath, "Lock", "ReleaseStat"):
		// Whatever Stat it returns, the lock is no longer held afterwards.
		return lockRelease, w.cafKey(call)
	}
	return lockNone, ""
}

func (w *lockWalker) shmemKey(call *ast.CallExpr) string {
	if len(call.Args) < 2 {
		return ""
	}
	return w.pass.exprKey(call.Args[0]) + "/" + w.pass.exprKey(call.Args[1])
}

func (w *lockWalker) cafKey(call *ast.CallExpr) string {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || len(call.Args) < 1 {
		return ""
	}
	return w.pass.exprKey(sel.X) + "/" + w.pass.exprKey(call.Args[0])
}

// lockName renders the key's call for messages: "lck[j]"-style.
func lockName(call *ast.CallExpr) string {
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		if len(call.Args) >= 2 {
			return types.ExprString(sel.X) + ".(" + types.ExprString(call.Args[0]) + "," + types.ExprString(call.Args[1]) + ")"
		}
		if len(call.Args) >= 1 {
			return types.ExprString(sel.X) + "[" + types.ExprString(call.Args[0]) + "]"
		}
	}
	return types.ExprString(call.Fun)
}

func (w *lockWalker) walkStmt(s ast.Stmt, st lockState) lockState {
	switch x := s.(type) {
	case *ast.BlockStmt:
		for _, sub := range x.List {
			st = w.walkStmt(sub, st)
		}
		return st
	case *ast.IfStmt:
		if x.Init != nil {
			st = w.walkStmt(x.Init, st)
		}
		// Conditional acquisition: "if pe.TestLock(...) { ... }" holds the
		// lock in the then-branch only.
		var tryKey string
		var tryPos token.Pos
		if call, ok := ast.Unparen(x.Cond).(*ast.CallExpr); ok {
			if kind, key := w.classify(call); kind == lockTry {
				tryKey, tryPos = key, call.Pos()
			}
		}
		// Stat-gated acquisition: a comparison of an AcquireStat result (or a
		// variable bound to one) against StatOK splits the held-state — the
		// lock is held exactly on the success side of the branch.
		statInfo, statEq, statOK := w.statCond(x.Cond)
		if tryKey == "" && !statOK {
			w.applyExprCalls(x.Cond, st)
		}
		thenSt := st.clone()
		elseSt := st.clone()
		if tryKey != "" {
			thenSt[tryKey] = lockInfo{must: true, pos: tryPos}
		}
		if statOK {
			if statEq { // stat == StatOK: held in then, not in else
				thenSt[statInfo.key] = lockInfo{must: true, pos: statInfo.pos}
				delete(elseSt, statInfo.key)
			} else { // stat != StatOK: not held in then, held in else
				delete(thenSt, statInfo.key)
				elseSt[statInfo.key] = lockInfo{must: true, pos: statInfo.pos}
			}
		}
		thenSt = w.walkStmt(x.Body, thenSt)
		if x.Else != nil {
			elseSt = w.walkStmt(x.Else, elseSt)
		}
		switch {
		case w.terminates(x.Body):
			return elseSt
		case x.Else != nil && w.terminates(x.Else):
			return thenSt
		default:
			return joinLocks(thenSt, elseSt)
		}
	case *ast.ForStmt:
		if x.Init != nil {
			st = w.walkStmt(x.Init, st)
		}
		w.applyExprCalls(x.Cond, st)
		body := w.walkStmt(x.Body, st.clone())
		if x.Post != nil {
			body = w.walkStmt(x.Post, body)
		}
		return joinLocks(st, body)
	case *ast.RangeStmt:
		w.applyExprCalls(x.X, st)
		body := w.walkStmt(x.Body, st.clone())
		return joinLocks(st, body)
	case *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
		return w.walkCases(s, st)
	case *ast.LabeledStmt:
		return w.walkStmt(x.Stmt, st)
	case *ast.ReturnStmt:
		w.applyExprCalls(x, st)
		w.reportHeld(st, x.Pos())
		return st
	case *ast.AssignStmt:
		// "stat := lck.AcquireStat(j)": bind the variable to the acquisition
		// so later StatOK comparisons can refine the held-state. Until (and
		// unless) such a comparison happens, the lock counts as held — an
		// unchecked Stat must not hide a leak.
		if len(x.Lhs) == 1 && len(x.Rhs) == 1 {
			if call, ok := ast.Unparen(x.Rhs[0]).(*ast.CallExpr); ok {
				if kind, key := w.classify(call); kind == lockAcquireStat && key != "" {
					if id, ok := x.Lhs[0].(*ast.Ident); ok {
						w.statVars[id.Name] = statBind{key: key, pos: call.Pos()}
					}
				}
			}
		}
		w.applyStmtCalls(x, st)
		return st
	case *ast.DeferStmt:
		w.recordDefer(x)
		return st
	case *ast.GoStmt:
		return st
	case nil:
		return st
	default:
		w.applyStmtCalls(x, st)
		return st
	}
}

func (w *lockWalker) walkCases(s ast.Stmt, st lockState) lockState {
	var body *ast.BlockStmt
	hasDefault := false
	switch x := s.(type) {
	case *ast.SwitchStmt:
		if x.Init != nil {
			st = w.walkStmt(x.Init, st)
		}
		w.applyExprCalls(x.Tag, st)
		body = x.Body
	case *ast.TypeSwitchStmt:
		if x.Init != nil {
			st = w.walkStmt(x.Init, st)
		}
		body = x.Body
	case *ast.SelectStmt:
		body = x.Body
	}
	var merged lockState
	for _, c := range body.List {
		caseSt := st.clone()
		var stmts []ast.Stmt
		switch cl := c.(type) {
		case *ast.CaseClause:
			if cl.List == nil {
				hasDefault = true
			}
			for _, e := range cl.List {
				w.applyExprCalls(e, caseSt)
			}
			stmts = cl.Body
		case *ast.CommClause:
			if cl.Comm == nil {
				hasDefault = true
			} else {
				caseSt = w.walkStmt(cl.Comm, caseSt)
			}
			stmts = cl.Body
		}
		for _, sub := range stmts {
			caseSt = w.walkStmt(sub, caseSt)
		}
		if merged == nil {
			merged = caseSt
		} else {
			merged = joinLocks(merged, caseSt)
		}
	}
	if merged == nil {
		return st
	}
	if !hasDefault {
		merged = joinLocks(merged, st)
	}
	return merged
}

// terminates reports whether a statement always transfers control out of the
// enclosing flow: return, panic, a terminating block, or caf.Image.FailImage
// — FAIL IMAGE never returns, and a lock held at that point is the runtime's
// takeover path to recover, not a leak.
func (w *lockWalker) terminates(s ast.Stmt) bool {
	switch x := s.(type) {
	case *ast.ReturnStmt, *ast.BranchStmt:
		return true
	case *ast.ExprStmt:
		if call, ok := x.X.(*ast.CallExpr); ok {
			if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "panic" {
				return true
			}
			if fn := w.pass.callee(call); fn != nil && isMethodOf(fn, cafPath, "Image", "FailImage") {
				return true
			}
		}
	case *ast.BlockStmt:
		if n := len(x.List); n > 0 {
			return w.terminates(x.List[n-1])
		}
	}
	return false
}

// applyStmtCalls applies lock effects of the calls in a non-control
// statement.
func (w *lockWalker) applyStmtCalls(s ast.Stmt, st lockState) {
	w.applyExprCalls(s, st)
}

func (w *lockWalker) applyExprCalls(n ast.Node, st lockState) {
	if n == nil {
		return
	}
	stmtCalls(n, func(call *ast.CallExpr) { w.applyCall(call, st) })
}

func (w *lockWalker) applyCall(call *ast.CallExpr, st lockState) {
	kind, key := w.classify(call)
	if key == "" && kind != lockNone {
		return // unresolvable key expression: stay silent
	}
	switch kind {
	case lockAcquire:
		if info, held := st[key]; held && info.must {
			w.pass.Reportf(call.Pos(), "lock %s acquired at line %d is acquired again without an intervening release",
				lockName(call), w.pass.Pkg.Fset.Position(info.pos).Line)
		}
		st[key] = lockInfo{must: true, pos: call.Pos()}
	case lockRelease:
		if _, held := st[key]; !held && !w.deferred[key] {
			w.pass.Reportf(call.Pos(), "release of lock %s which is not acquired on this path", lockName(call))
		}
		delete(st, key)
	case lockAcquireStat:
		// Held unless a StatOK comparison later proves otherwise; the branch
		// refinement in walkStmt removes it from the failure path.
		if info, held := st[key]; held && info.must {
			w.pass.Reportf(call.Pos(), "lock %s acquired at line %d is acquired again without an intervening release",
				lockName(call), w.pass.Pkg.Fset.Position(info.pos).Line)
		}
		st[key] = lockInfo{must: true, pos: call.Pos()}
	case lockTry:
		// Result not consumed as an if-condition: the lock is possibly held
		// from here on; later releases are legitimate.
		st[key] = lockInfo{must: false, pos: call.Pos()}
	}
}

// statCond recognises a StatOK comparison gating an AcquireStat result:
// either the call itself ("if l.AcquireStat(j) == StatOK") or a variable
// bound to one ("stat := l.AcquireStat(j); if stat != StatOK"). It returns
// the acquisition it refines and whether the operator was == (true) or !=.
func (w *lockWalker) statCond(cond ast.Expr) (statBind, bool, bool) {
	bin, ok := ast.Unparen(cond).(*ast.BinaryExpr)
	if !ok || (bin.Op != token.EQL && bin.Op != token.NEQ) {
		return statBind{}, false, false
	}
	operand := bin.X
	switch {
	case w.isStatOK(bin.X):
		operand = bin.Y
	case w.isStatOK(bin.Y):
	default:
		return statBind{}, false, false
	}
	switch x := ast.Unparen(operand).(type) {
	case *ast.CallExpr:
		if kind, key := w.classify(x); kind == lockAcquireStat && key != "" {
			return statBind{key: key, pos: x.Pos()}, bin.Op == token.EQL, true
		}
	case *ast.Ident:
		if b, bound := w.statVars[x.Name]; bound {
			return b, bin.Op == token.EQL, true
		}
	}
	return statBind{}, false, false
}

// isStatOK reports whether e denotes the caf.StatOK constant.
func (w *lockWalker) isStatOK(e ast.Expr) bool {
	var id *ast.Ident
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		id = x
	case *ast.SelectorExpr:
		id = x.Sel
	default:
		return false
	}
	obj := w.pass.Pkg.Info.Uses[id]
	c, ok := obj.(*types.Const)
	return ok && c.Name() == "StatOK" && c.Pkg() != nil && c.Pkg().Path() == cafPath
}

// recordDefer notes releases performed by defer statements (directly or
// inside an immediately-deferred closure).
func (w *lockWalker) recordDefer(d *ast.DeferStmt) {
	note := func(call *ast.CallExpr) {
		if kind, key := w.classify(call); kind == lockRelease && key != "" {
			w.deferred[key] = true
		}
	}
	note(d.Call)
	if fl, ok := d.Call.Fun.(*ast.FuncLit); ok {
		ast.Inspect(fl.Body, func(n ast.Node) bool {
			if call, ok := n.(*ast.CallExpr); ok {
				note(call)
			}
			return true
		})
	}
}

// reportHeld flags locks that are must-held at a function exit point and not
// covered by a deferred release.
func (w *lockWalker) reportHeld(st lockState, at token.Pos) {
	for key, info := range st {
		if !info.must || w.deferred[key] {
			continue
		}
		w.pass.Reportf(at, "function can return while still holding the lock acquired at line %d",
			w.pass.Pkg.Fset.Position(info.pos).Line)
	}
}
