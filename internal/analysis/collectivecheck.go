package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// CollectiveCheck flags collective operations issued under PE-dependent
// control flow — the classic SPMD divergence bug ("if me == 0 {
// Malloc(...) }"). Every collective in the OpenSHMEM layer (symmetric
// allocation, barrier, broadcast, reductions) and the CAF layer (coarray
// allocation, sync all, co_sum, lock creation) must be reached by every
// PE/image with matching arguments, or the job deadlocks (or worse, the
// paper's collective symmetric allocator hands out mismatched handles).
//
// Control flow counts as PE-dependent when its condition reads this PE's
// identity: a MyPE()/ThisImage() call, the substrate PE's ID field, or a
// variable assigned from one of those. Team-scoped collectives are exempt —
// team membership is PE-dependent by design.
var CollectiveCheck = &Analyzer{
	Name: "collectivecheck",
	Doc:  "collective calls under PE-dependent conditionals",
	Run:  runCollectiveCheck,
}

// shmem.PE methods that are collective.
var shmemCollectiveMethods = map[string]bool{
	"Malloc": true, "Free": true, "Barrier": true, "Broadcast": true,
}

// caf.Image methods that are collective.
var cafCollectiveMethods = map[string]bool{
	"SyncAll": true, "FormTeam": true,
}

// Collective package-level functions, by package path.
var collectiveFuncs = map[string]map[string]bool{
	shmemPath: {"ToAll": true, "FCollect": true, "Collect": true},
	cafPath: {
		"CoSum": true, "CoMin": true, "CoMax": true, "CoReduce": true,
		"CoBroadcast": true, "Allocate": true, "AllocateDyn": true,
		"NewLock": true, "NewEvent": true, "NewCritical": true, "NewAtomicVar": true,
	},
}

// Collective methods on other runtime types: receiver type name -> methods.
var cafCollectiveTypeMethods = map[string]map[string]bool{
	"Coarray": {"Deallocate": true},
	"Lock":    {"Deallocate": true},
}

func runCollectiveCheck(pass *Pass) {
	pass.funcBodies(func(name string, body *ast.BlockStmt) {
		w := &collWalker{pass: pass, tainted: map[types.Object]bool{}}
		w.computeTaint(body)
		w.walkStmt(body, token.NoPos)
	})
}

type collWalker struct {
	pass    *Pass
	tainted map[types.Object]bool
}

// computeTaint marks variables assigned (directly or transitively) from this
// PE's identity, iterating to a fixpoint.
func (w *collWalker) computeTaint(body *ast.BlockStmt) {
	for {
		changed := false
		ast.Inspect(body, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.AssignStmt:
				for i, lhs := range x.Lhs {
					id, ok := lhs.(*ast.Ident)
					if !ok {
						continue
					}
					var rhs ast.Expr
					if len(x.Rhs) == len(x.Lhs) {
						rhs = x.Rhs[i]
					} else if len(x.Rhs) == 1 {
						rhs = x.Rhs[0]
					}
					if rhs == nil || !w.exprTainted(rhs) {
						continue
					}
					obj := w.pass.Pkg.Info.ObjectOf(id)
					if obj != nil && !w.tainted[obj] {
						w.tainted[obj] = true
						changed = true
					}
				}
			case *ast.ValueSpec:
				for i, id := range x.Names {
					if i < len(x.Values) && w.exprTainted(x.Values[i]) {
						obj := w.pass.Pkg.Info.ObjectOf(id)
						if obj != nil && !w.tainted[obj] {
							w.tainted[obj] = true
							changed = true
						}
					}
				}
			}
			return true
		})
		if !changed {
			return
		}
	}
}

// exprTainted reports whether the expression reads this PE's identity.
func (w *collWalker) exprTainted(e ast.Expr) bool {
	if e == nil {
		return false
	}
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if found {
			return false
		}
		switch x := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.CallExpr:
			fn := w.pass.callee(x)
			if isMethodOf(fn, shmemPath, "PE", "MyPE") ||
				isMethodOf(fn, cafPath, "Image", "ThisImage") ||
				isMethodOf(fn, cafPath, "Team", "ThisImage") ||
				isMethodOf(fn, cafPath, "Team", "TeamImage") {
				found = true
				return false
			}
		case *ast.SelectorExpr:
			if x.Sel.Name == "ID" {
				if tv, ok := w.pass.Pkg.Info.Types[x.X]; ok {
					t := tv.Type
					if ptr, ok := t.(*types.Pointer); ok {
						t = ptr.Elem()
					}
					if named, ok := t.(*types.Named); ok &&
						named.Obj().Name() == "PE" && named.Obj().Pkg() != nil &&
						named.Obj().Pkg().Path() == "cafshmem/internal/pgas" {
						found = true
						return false
					}
				}
			}
		case *ast.Ident:
			if obj := w.pass.Pkg.Info.ObjectOf(x); obj != nil && w.tainted[obj] {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// walkStmt descends the statement tree; div is the position of the innermost
// enclosing PE-dependent condition (NoPos when none).
func (w *collWalker) walkStmt(s ast.Stmt, div token.Pos) {
	switch x := s.(type) {
	case *ast.BlockStmt:
		for _, sub := range x.List {
			w.walkStmt(sub, div)
		}
	case *ast.IfStmt:
		if x.Init != nil {
			w.walkStmt(x.Init, div)
		}
		w.checkCalls(x.Cond, div)
		inner := div
		if w.exprTainted(x.Cond) {
			inner = x.Cond.Pos()
		}
		w.walkStmt(x.Body, inner)
		if x.Else != nil {
			w.walkStmt(x.Else, inner)
		}
	case *ast.ForStmt:
		if x.Init != nil {
			w.walkStmt(x.Init, div)
		}
		w.checkCalls(x.Cond, div)
		inner := div
		if w.exprTainted(x.Cond) {
			inner = x.For
		}
		w.walkStmt(x.Body, inner)
		if x.Post != nil {
			w.walkStmt(x.Post, inner)
		}
	case *ast.RangeStmt:
		w.checkCalls(x.X, div)
		inner := div
		if w.exprTainted(x.X) {
			inner = x.For
		}
		w.walkStmt(x.Body, inner)
	case *ast.SwitchStmt:
		if x.Init != nil {
			w.walkStmt(x.Init, div)
		}
		w.checkCalls(x.Tag, div)
		inner := div
		if x.Tag != nil && w.exprTainted(x.Tag) {
			inner = x.Tag.Pos()
		}
		for _, c := range x.Body.List {
			cl := c.(*ast.CaseClause)
			caseDiv := inner
			for _, e := range cl.List {
				w.checkCalls(e, inner)
				if caseDiv == div && w.exprTainted(e) {
					caseDiv = e.Pos()
				}
			}
			for _, sub := range cl.Body {
				w.walkStmt(sub, caseDiv)
			}
		}
	case *ast.TypeSwitchStmt:
		if x.Init != nil {
			w.walkStmt(x.Init, div)
		}
		for _, c := range x.Body.List {
			for _, sub := range c.(*ast.CaseClause).Body {
				w.walkStmt(sub, div)
			}
		}
	case *ast.SelectStmt:
		for _, c := range x.Body.List {
			cc := c.(*ast.CommClause)
			if cc.Comm != nil {
				w.walkStmt(cc.Comm, div)
			}
			for _, sub := range cc.Body {
				w.walkStmt(sub, div)
			}
		}
	case *ast.LabeledStmt:
		w.walkStmt(x.Stmt, div)
	case nil:
	default:
		w.checkCalls(x, div)
	}
}

// checkCalls reports collective calls inside n when executing under a
// PE-dependent condition.
func (w *collWalker) checkCalls(n ast.Node, div token.Pos) {
	if n == nil || div == token.NoPos {
		return
	}
	stmtCalls(n, func(call *ast.CallExpr) {
		if name, ok := w.collectiveName(call); ok {
			w.pass.Reportf(call.Pos(),
				"collective %s under the PE-dependent condition at line %d: not every PE reaches it (SPMD divergence)",
				name, w.pass.Pkg.Fset.Position(div).Line)
			return
		}
		// A helper whose summary shows an unconditionally-executed collective
		// diverges the same way when only some PEs call it.
		if fn := w.pass.callee(call); fn != nil {
			if sum := w.pass.summaryOf(fn); sum != nil && len(sum.Collectives) > 0 {
				w.pass.Reportf(call.Pos(),
					"collective %s reached through the call to %s under the PE-dependent condition at line %d: not every PE reaches it (SPMD divergence)",
					sum.Collectives[0].Name, fn.Name(), w.pass.Pkg.Fset.Position(div).Line)
			}
		}
	})
}

// collectiveName resolves a call to a known collective operation.
func (w *collWalker) collectiveName(call *ast.CallExpr) (string, bool) {
	fn := w.pass.callee(call)
	if fn == nil || fn.Pkg() == nil {
		return "", false
	}
	path, name := fn.Pkg().Path(), fn.Name()
	if named := recvNamed(fn); named != nil {
		switch {
		case path == shmemPath && named.Obj().Name() == "PE" && shmemCollectiveMethods[name]:
			return "PE." + name, true
		case path == cafPath && named.Obj().Name() == "Image" && cafCollectiveMethods[name]:
			return "Image." + name, true
		case path == cafPath && cafCollectiveTypeMethods[named.Obj().Name()] != nil &&
			cafCollectiveTypeMethods[named.Obj().Name()][name]:
			return named.Obj().Name() + "." + name, true
		}
		return "", false
	}
	if m := collectiveFuncs[path]; m != nil && m[name] {
		return name, true
	}
	return "", false
}
