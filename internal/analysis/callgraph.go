package analysis

import (
	"go/ast"
	"go/types"
	"reflect"
)

// callgraph.go is the interprocedural half of the engine: a module-local
// call graph over every package the Loader has type-checked, topologically
// ordered by strongly-connected component, over which summary.go computes
// per-function effect summaries bottom-up (callees before callers). The
// paper's completion contract (§IV-B) is a whole-program property — a put is
// outstanding until *somebody* quiets, across any number of helper frames —
// so the analyzers consult these summaries instead of treating every
// module-local call as an opaque completion point.
//
// Precision boundaries, all falling back to the conservative "may complete
// anything, creates nothing" opaque summary (which can only mask findings,
// never invent them):
//
//   - indirect calls through function values and non-Transport interface
//     methods;
//   - function literals that escape their defining function (a literal's own
//     body is still analyzed for its own diagnostics by funcBodies);
//   - recursion: members of a non-trivial SCC iterate to a fixpoint from the
//     opaque assumption, and the whole SCC falls back to opaque if the
//     fixpoint does not settle within a few rounds.

// A Program is the interprocedural view over a Loader: the call graph and
// the effect summaries of every function whose body the loader has parsed.
type Program struct {
	l     *Loader
	built int // number of loader packages at the last build

	decls     map[*types.Func]*declSite
	order     []*types.Func // deterministic declaration order
	summaries map[*types.Func]*Summary
}

// declSite is one function declaration with a body.
type declSite struct {
	fn   *types.Func
	pkg  *Package
	decl *ast.FuncDecl
}

// NewProgram creates the interprocedural view over l. Summaries are
// (re)computed lazily on first use and whenever the loader has type-checked
// new packages since the last build.
func NewProgram(l *Loader) *Program {
	return &Program{l: l}
}

// Summary returns fn's effect summary, or nil when fn's body is unknown
// (external code, interface methods outside the modelled Transport surface).
func (p *Program) Summary(fn *types.Func) *Summary {
	p.ensure()
	return p.summaries[fn]
}

// Decl returns the declaration site of fn, or nil when unknown.
func (p *Program) Decl(fn *types.Func) *declSite {
	p.ensure()
	return p.decls[fn]
}

// LockEdges returns the union of every summarized function's lock-order
// edges (deadlockcheck's raw material).
func (p *Program) LockEdges() []lockEdge {
	p.ensure()
	var out []lockEdge
	for _, fn := range p.order {
		out = append(out, p.summaries[fn].LockEdges...)
	}
	return out
}

// ensure (re)builds the call graph and all summaries if the loader has
// type-checked packages since the last build.
func (p *Program) ensure() {
	pkgs := p.l.Packages()
	if p.built == len(pkgs) {
		return
	}
	p.built = len(pkgs)
	p.decls = map[*types.Func]*declSite{}
	p.order = nil
	p.summaries = map[*types.Func]*Summary{}

	for _, pkg := range pkgs {
		if pkg.Info == nil {
			continue
		}
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				fn, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				p.decls[fn] = &declSite{fn: fn, pkg: pkg, decl: fd}
				p.order = append(p.order, fn)
			}
		}
	}

	// Static call edges, restricted to functions with known bodies. Calls
	// inside nested literals and defers are included: extra edges can only
	// merge SCCs, which is the conservative direction.
	edges := map[*types.Func][]*types.Func{}
	for _, fn := range p.order {
		site := p.decls[fn]
		seen := map[*types.Func]bool{}
		ast.Inspect(site.decl.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if callee := calleeFunc(site.pkg.Info, call); callee != nil && !seen[callee] {
				if _, known := p.decls[callee]; known {
					seen[callee] = true
					edges[fn] = append(edges[fn], callee)
				}
			}
			return true
		})
	}

	// Tarjan SCCs emerge in reverse topological order (callees before
	// callers), exactly the order summary computation wants.
	for _, scc := range tarjanSCC(p.order, edges) {
		p.summarizeSCC(scc, edges)
	}
}

// summarizeSCC computes summaries for one strongly-connected component.
// Singleton components without self-recursion summarize directly; recursive
// components start from the opaque assumption for each member and iterate to
// a conservative fixpoint, reverting to opaque if it does not settle.
func (p *Program) summarizeSCC(scc []*types.Func, edges map[*types.Func][]*types.Func) {
	if len(scc) == 1 && !hasEdge(edges, scc[0], scc[0]) {
		p.summaries[scc[0]] = p.summarize(scc[0])
		return
	}
	for _, fn := range scc {
		p.summaries[fn] = opaqueSummary()
	}
	const maxRounds = 4
	for round := 0; ; round++ {
		if round == maxRounds {
			for _, fn := range scc {
				p.summaries[fn] = opaqueSummary()
			}
			return
		}
		changed := false
		for _, fn := range scc {
			s := p.summarize(fn)
			if !reflect.DeepEqual(s, p.summaries[fn]) {
				p.summaries[fn] = s
				changed = true
			}
		}
		if !changed {
			return
		}
	}
}

func hasEdge(edges map[*types.Func][]*types.Func, from, to *types.Func) bool {
	for _, f := range edges[from] {
		if f == to {
			return true
		}
	}
	return false
}

// tarjanSCC returns the strongly-connected components of the call graph in
// reverse topological order (every component precedes its callers). The
// iterative formulation keeps deep call chains off the Go stack.
func tarjanSCC(nodes []*types.Func, edges map[*types.Func][]*types.Func) [][]*types.Func {
	index := map[*types.Func]int{}
	lowlink := map[*types.Func]int{}
	onStack := map[*types.Func]bool{}
	var stack []*types.Func
	var sccs [][]*types.Func
	next := 0

	type frame struct {
		fn *types.Func
		ei int // next edge index to explore
	}
	for _, root := range nodes {
		if _, seen := index[root]; seen {
			continue
		}
		work := []frame{{fn: root}}
		for len(work) > 0 {
			f := &work[len(work)-1]
			v := f.fn
			if f.ei == 0 {
				index[v] = next
				lowlink[v] = next
				next++
				stack = append(stack, v)
				onStack[v] = true
			}
			advanced := false
			for f.ei < len(edges[v]) {
				w := edges[v][f.ei]
				f.ei++
				if _, seen := index[w]; !seen {
					work = append(work, frame{fn: w})
					advanced = true
					break
				}
				if onStack[w] && index[w] < lowlink[v] {
					lowlink[v] = index[w]
				}
			}
			if advanced {
				continue
			}
			// v is finished: pop it, fold its lowlink into the parent.
			work = work[:len(work)-1]
			if len(work) > 0 {
				parent := work[len(work)-1].fn
				if lowlink[v] < lowlink[parent] {
					lowlink[parent] = lowlink[v]
				}
			}
			if lowlink[v] == index[v] {
				var scc []*types.Func
				for {
					w := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[w] = false
					scc = append(scc, w)
					if w == v {
						break
					}
				}
				sccs = append(sccs, scc)
			}
		}
	}
	return sccs
}
