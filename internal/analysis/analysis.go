// Package analysis is a self-contained static-analysis engine for the PGAS
// API contracts this repository is built on. The paper's mapping of CAF onto
// OpenSHMEM (§IV) rests on a handful of rules that the compiler cannot check
// for us — one-sided puts are only remotely visible after quiet/barrier,
// lock acquire/release must pair on every path, collectives must be called by
// every PE, and symmetric handles are only meaningful within the world that
// allocated them. Each rule is encoded as an Analyzer; cmd/shmemvet drives
// them over the module's packages.
//
// The engine uses only the standard library (go/ast, go/parser, go/types):
// module-local imports are type-checked from source and standard-library
// imports go through the compiler's source importer, so no third-party
// analysis framework is required.
//
// Diagnostics are heuristic but tuned to report only patterns that are
// wrong with high confidence. The analyzers see through module-local calls
// via per-function effect summaries computed over the module call graph
// (callgraph.go, summary.go); anything unresolvable stays conservative. A
// "//shmemvet:allow <analyzer>" comment ("shmemvet:ignore" is an alias) on
// (or immediately above) a line suppresses its findings — used where a
// runtime layer legitimately breaks a surface rule (e.g. the CAF transport
// viewing the whole partition as one Sym).
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// An Analyzer checks one PGAS API contract.
type Analyzer struct {
	Name string // short name used in reports and suppression comments
	Doc  string // one-line description
	Run  func(*Pass)
}

// Pass carries one package through one analyzer. Prog, when non-nil, gives
// the analyzer the interprocedural view (callgraph.go): per-function effect
// summaries that let it see through module-local calls instead of treating
// them as opaque completion points. A nil Prog degrades every analyzer to its
// original intraprocedural behaviour.
type Pass struct {
	Analyzer *Analyzer
	Pkg      *Package
	Prog     *Program
	diags    []Diagnostic
}

// summaryOf returns the effect summary for fn, or nil when fn's body is
// unknown to the program (external code, interface methods, no Program).
func (p *Pass) summaryOf(fn *types.Func) *Summary {
	if p.Prog == nil || fn == nil {
		return nil
	}
	return p.Prog.Summary(fn)
}

// Diagnostic is one finding.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...interface{}) {
	p.diags = append(p.diags, Diagnostic{
		Pos:      p.Pkg.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// All returns every analyzer in the suite.
func All() []*Analyzer {
	return []*Analyzer{SyncCheck, LockCheck, CollectiveCheck, SymCheck, DeadlockCheck}
}

// RunAnalyzers applies the analyzers to the package and returns the findings
// that survive suppression comments, sorted by position. prog supplies the
// interprocedural summaries; nil runs the analyzers intraprocedurally.
func RunAnalyzers(prog *Program, pkg *Package, analyzers []*Analyzer) []Diagnostic {
	allowed := suppressions(pkg)
	var out []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{Analyzer: a, Pkg: pkg, Prog: prog}
		a.Run(pass)
		for _, d := range pass.diags {
			if allowed[suppKey{d.Pos.Filename, d.Pos.Line, d.Analyzer}] ||
				allowed[suppKey{d.Pos.Filename, d.Pos.Line, "all"}] {
				continue
			}
			out = append(out, d)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
	// Deduplicate: path-sensitive walkers (e.g. the loop double-pass in
	// synccheck) can report the same site once per pass.
	dedup := out[:0]
	for i, d := range out {
		if i > 0 && d == out[i-1] {
			continue
		}
		dedup = append(dedup, d)
	}
	return dedup
}

type suppKey struct {
	file     string
	line     int
	analyzer string
}

// suppressions collects "//shmemvet:allow name" comments ("shmemvet:ignore"
// is an accepted alias). A comment suppresses the named analyzer on its own
// line and on the following line (so it can sit above the flagged statement).
func suppressions(pkg *Package) map[suppKey]bool {
	out := map[suppKey]bool{}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				text = strings.TrimSpace(text)
				rest, ok := strings.CutPrefix(text, "shmemvet:allow")
				if !ok {
					rest, ok = strings.CutPrefix(text, "shmemvet:ignore")
				}
				if !ok {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				for _, name := range strings.Fields(rest) {
					out[suppKey{pos.Filename, pos.Line, name}] = true
					out[suppKey{pos.Filename, pos.Line + 1, name}] = true
				}
			}
		}
	}
	return out
}

// --- shared call-resolution helpers ---

const (
	shmemPath = "cafshmem/internal/shmem"
	cafPath   = "cafshmem/internal/caf"
)

// callee resolves the statically-called function or method of a call
// expression, seeing through generic instantiation. It returns nil for
// indirect calls (function values, interface methods resolve to the
// interface method object, which is still useful).
func (p *Pass) callee(call *ast.CallExpr) *types.Func {
	return calleeFunc(p.Pkg.Info, call)
}

// calleeFunc is Pass.callee without the Pass: callgraph construction and
// summary computation resolve callees for packages other than the one under
// analysis.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	case *ast.IndexExpr: // explicit generic instantiation: Put[int64](...)
		if sel, ok := ast.Unparen(fun.X).(*ast.SelectorExpr); ok {
			id = sel.Sel
		} else if ident, ok := ast.Unparen(fun.X).(*ast.Ident); ok {
			id = ident
		}
	case *ast.IndexListExpr:
		if sel, ok := ast.Unparen(fun.X).(*ast.SelectorExpr); ok {
			id = sel.Sel
		} else if ident, ok := ast.Unparen(fun.X).(*ast.Ident); ok {
			id = ident
		}
	}
	if id == nil {
		return nil
	}
	if fn, ok := info.Uses[id].(*types.Func); ok {
		return fn
	}
	return nil
}

// fnIs reports whether fn is the named function or method of the package at
// path (methods match on their receiver's package).
func fnIs(fn *types.Func, path, name string) bool {
	if fn == nil || fn.Name() != name {
		return false
	}
	return fn.Pkg() != nil && fn.Pkg().Path() == path
}

// recvNamed returns the named type of fn's receiver (deref'd), or nil for
// package-level functions.
func recvNamed(fn *types.Func) *types.Named {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return nil
	}
	t := sig.Recv().Type()
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, _ := t.(*types.Named)
	return named
}

// isMethodOf reports whether fn is a method named name on the named type
// typeName defined in the package at path.
func isMethodOf(fn *types.Func, path, typeName, name string) bool {
	if fn == nil || fn.Name() != name {
		return false
	}
	named := recvNamed(fn)
	if named == nil {
		return false
	}
	obj := named.Obj()
	return obj.Name() == typeName && obj.Pkg() != nil && obj.Pkg().Path() == path
}

// exprKey renders an expression as a normalized string so that two
// references to the same lock or symmetric object compare equal. Identifiers
// — including the qualifier and member of a package-qualified selector —
// resolve through go/types object identity where they resolve at all, with a
// purely syntactic rendering as the fallback, so neither a shadowed local in
// a nested scope nor an aliased import conflates distinct objects (or splits
// one object into distinct keys).
func (p *Pass) exprKey(e ast.Expr) string {
	var b strings.Builder
	p.writeExprKey(&b, ast.Unparen(e))
	return b.String()
}

func (p *Pass) writeExprKey(b *strings.Builder, e ast.Expr) {
	switch x := e.(type) {
	case *ast.Ident:
		if obj := p.Pkg.Info.ObjectOf(x); obj != nil {
			fmt.Fprintf(b, "%s@%d", x.Name, obj.Pos())
		} else {
			b.WriteString(x.Name)
		}
	case *ast.SelectorExpr:
		// A package-qualified reference (pkg.Var) keys on the member object
		// itself: every import alias and every file's import declaration of
		// the same package then yields one canonical key.
		if id, ok := ast.Unparen(x.X).(*ast.Ident); ok {
			if _, isPkg := p.Pkg.Info.ObjectOf(id).(*types.PkgName); isPkg {
				if obj := p.Pkg.Info.ObjectOf(x.Sel); obj != nil {
					fmt.Fprintf(b, "%s@%d", x.Sel.Name, obj.Pos())
					return
				}
			}
		}
		p.writeExprKey(b, ast.Unparen(x.X))
		b.WriteByte('.')
		b.WriteString(x.Sel.Name)
	case *ast.BasicLit:
		b.WriteString(x.Value)
	case *ast.CallExpr:
		p.writeExprKey(b, ast.Unparen(x.Fun))
		b.WriteByte('(')
		for i, a := range x.Args {
			if i > 0 {
				b.WriteByte(',')
			}
			p.writeExprKey(b, ast.Unparen(a))
		}
		b.WriteByte(')')
	case *ast.IndexExpr:
		p.writeExprKey(b, ast.Unparen(x.X))
		b.WriteByte('[')
		p.writeExprKey(b, ast.Unparen(x.Index))
		b.WriteByte(']')
	case *ast.UnaryExpr:
		b.WriteString(x.Op.String())
		p.writeExprKey(b, ast.Unparen(x.X))
	case *ast.BinaryExpr:
		p.writeExprKey(b, ast.Unparen(x.X))
		b.WriteString(x.Op.String())
		p.writeExprKey(b, ast.Unparen(x.Y))
	default:
		fmt.Fprintf(b, "<%T@%d>", e, e.Pos())
	}
}

// posInPackage reports whether pos falls in one of this package's files.
func (p *Pass) posInPackage(pos token.Pos) bool {
	if !pos.IsValid() {
		return false
	}
	file := p.Pkg.Fset.Position(pos).Filename
	for _, fn := range p.Pkg.filenames {
		if fn == file {
			return true
		}
	}
	return false
}

// funcDecls yields every function declaration with a body in the package.
func (p *Pass) funcDecls(visit func(*ast.FuncDecl)) {
	for _, f := range p.Pkg.Files {
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				visit(fd)
			}
		}
	}
}

// funcBodies yields every function body in the package: declared functions
// AND function literals (SPMD bodies are almost always closures passed to
// Run). Each body is visited exactly once and analyzed in isolation; walkers
// must not descend into nested FuncLits themselves.
func (p *Pass) funcBodies(visit func(name string, body *ast.BlockStmt)) {
	p.funcDecls(func(fd *ast.FuncDecl) {
		visit(fd.Name.Name, fd.Body)
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			if fl, ok := n.(*ast.FuncLit); ok {
				visit(fd.Name.Name + ".func", fl.Body)
			}
			return true
		})
	})
}

// stmtCalls yields the call expressions inside a statement's expressions in
// source order, without descending into nested function literals.
func stmtCalls(n ast.Node, visit func(*ast.CallExpr)) {
	if n == nil {
		return
	}
	ast.Inspect(n, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.CallExpr:
			// Visit arguments first: they are evaluated before the call.
			for _, a := range x.Args {
				stmtCalls(a, visit)
			}
			stmtCalls(x.Fun, visit)
			visit(x)
			return false
		}
		return true
	})
}
