package analysis

import (
	"go/ast"
	"testing"

	"cafshmem/internal/fabric"
	"cafshmem/internal/pgas"
	"cafshmem/internal/shmem"
)

// The static/dynamic parity property: synccheck (with summaries) must have
// zero false negatives against the runtime sanitizer on the seeded fixtures.
// Each scenario below executes, under shmem's sanitizer, the same operation
// sequence as one function in the syncbad/nbibad/ctxbad fixtures. For every
// scenario the test asserts BOTH halves of the tooling fire: the sanitizer
// records a completion-contract violation (race, source-buffer reuse, or
// in-flight NBI op) at runtime, and synccheck reports a diagnostic inside the
// fixture function that spells the same bug. A scenario the sanitizer
// catches but synccheck misses fails — that is a static false negative.

type sanScenario struct {
	fixture string // fixture package under testdata/src
	fn      string // fixture function this scenario mirrors
	body    func(pe *shmem.PE, data shmem.Sym)
}

var sanScenarios = []sanScenario{
	{"syncbad", "readAfterPut", func(pe *shmem.PE, data shmem.Sym) {
		pe.PutMem(1, data, 0, []byte{1, 2, 3})
		out := make([]byte, 3)
		pe.GetMem(1, data, 0, out)
	}},
	{"syncbad", "deferredQuietTooLate", func(pe *shmem.PE, data shmem.Sym) {
		pe.PutMem(1, data, 0, []byte{9})
		defer pe.Quiet() // runs at return, not before the read
		out := make([]byte, 1)
		pe.GetMem(1, data, 0, out)
	}},
	{"nbibad", "readAfterPutNBI", func(pe *shmem.PE, data shmem.Sym) {
		pe.PutMemNBI(1, data, 0, []byte{1, 2, 3})
		out := make([]byte, 3)
		pe.GetMem(1, data, 0, out)
		pe.Quiet()
	}},
	{"nbibad", "fenceDoesNotCompleteNBI", func(pe *shmem.PE, data shmem.Sym) {
		pe.PutMemNBI(1, data, 0, []byte{9})
		pe.Fence()
		out := make([]byte, 1)
		pe.GetMem(1, data, 0, out)
		pe.Quiet()
	}},
	{"nbibad", "srcReuseBeforeQuiet", func(pe *shmem.PE, data shmem.Sym) {
		buf := []byte{1, 2, 3, 4}
		pe.PutMemNBI(1, data, 0, buf)
		buf[0] = 9
		pe.Quiet()
	}},
	{"ctxbad", "peQuietDoesNotCompleteCtx", func(pe *shmem.PE, data shmem.Sym) {
		ctx := pe.CtxCreate()
		ctx.PutMemNBI(1, data, 0, []byte{1, 2, 3})
		pe.Quiet() // completes the default context only
		out := make([]byte, 3)
		pe.GetMem(1, data, 0, out)
		ctx.Destroy()
	}},
	{"ctxbad", "ctxSrcReuseBeforeCtxQuiet", func(pe *shmem.PE, data shmem.Sym) {
		ctx := pe.CtxCreate()
		buf := []byte{1, 2, 3, 4}
		ctx.PutMemNBI(1, data, 0, buf)
		pe.Quiet() // wrong completion environment: buf is still pinned
		buf[0] = 9
		ctx.Destroy()
	}},
}

// completionKinds are the sanitizer finding kinds synccheck models; leaks
// and collective divergence belong to other analyzers.
var completionKinds = map[string]bool{"race": true, "nbi-src-reuse": true, "nbi-leak": true}

func runSanitized(t *testing.T, body func(pe *shmem.PE, data shmem.Sym)) []shmem.Violation {
	t.Helper()
	w, err := shmem.NewWorld(shmem.Config{
		Machine: fabric.Stampede(), Profile: fabric.ProfMV2XSHMEM, Sanitize: true,
	}, 2)
	if err != nil {
		t.Fatal(err)
	}
	err = w.PgasWorld().Run(func(p *pgas.PE) {
		pe := w.Attach(p)
		data := pe.Malloc(64)
		if pe.MyPE() == 0 {
			body(pe, data)
		}
		pe.Barrier()
		pe.Free(data)
	})
	if err != nil {
		t.Fatal(err)
	}
	var out []shmem.Violation
	for _, v := range w.Finalize() {
		if completionKinds[v.Kind] {
			out = append(out, v)
		}
	}
	return out
}

// fixtureFuncRange locates the fixture function's source extent so static
// diagnostics can be attributed to it.
func fixtureFuncRange(pkg *Package, name string) (file string, lo, hi int) {
	for _, f := range pkg.Files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Name.Name == name {
				start := pkg.Fset.Position(fd.Pos())
				end := pkg.Fset.Position(fd.End())
				return start.Filename, start.Line, end.Line
			}
		}
	}
	return "", 0, 0
}

func TestSyncCheckHasNoFalseNegativesVsSanitizer(t *testing.T) {
	type loaded struct {
		pkg   *Package
		diags []Diagnostic
	}
	cache := map[string]loaded{}
	static := func(fixture string) loaded {
		if got, ok := cache[fixture]; ok {
			return got
		}
		pkg, prog := loadFixture(t, fixture)
		cache[fixture] = loaded{pkg, RunAnalyzers(prog, pkg, []*Analyzer{SyncCheck})}
		return cache[fixture]
	}

	for _, sc := range sanScenarios {
		sc := sc
		t.Run(sc.fixture+"/"+sc.fn, func(t *testing.T) {
			vs := runSanitized(t, sc.body)
			if len(vs) == 0 {
				t.Fatalf("sanitizer found no completion violation for %s.%s; the scenario no longer mirrors the fixture", sc.fixture, sc.fn)
			}
			l := static(sc.fixture)
			file, lo, hi := fixtureFuncRange(l.pkg, sc.fn)
			if file == "" {
				t.Fatalf("fixture %s has no function %s", sc.fixture, sc.fn)
			}
			for _, d := range l.diags {
				if d.Pos.Filename == file && d.Pos.Line >= lo && d.Pos.Line <= hi {
					return // statically caught: no false negative
				}
			}
			t.Errorf("runtime sanitizer caught %s.%s (%s) but synccheck reported nothing in %s:%d-%d — static false negative",
				sc.fixture, sc.fn, vs[0].Kind, file, lo, hi)
		})
	}
}
