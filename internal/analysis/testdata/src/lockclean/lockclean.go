// Package lockclean exercises lockcheck with correct lock discipline.
package lockclean

import (
	"cafshmem/internal/caf"
	"cafshmem/internal/shmem"
)

func balanced(pe *shmem.PE, lck shmem.Sym) {
	pe.SetLock(lck, 0)
	pe.ClearLock(lck, 0)
}

func twoLocks(pe *shmem.PE, lck shmem.Sym) {
	pe.SetLock(lck, 0)
	pe.SetLock(lck, 1)
	pe.ClearLock(lck, 1)
	pe.ClearLock(lck, 0)
}

func deferRelease(l *caf.Lock, j int, abort bool) int {
	l.Acquire(j)
	defer l.Release(j)
	if abort {
		return 0
	}
	return 1
}

func deferClosureRelease(l *caf.Lock, j int) {
	l.Acquire(j)
	defer func() {
		l.Release(j)
	}()
}

func tryThenRelease(l *caf.Lock, j int) bool {
	if l.TryAcquire(j) {
		l.Release(j)
		return true
	}
	return false
}

func testLockLoop(pe *shmem.PE, lck shmem.Sym) {
	for !pe.TestLock(lck, 0) {
	}
	pe.ClearLock(lck, 0)
}

func releaseAfterBranches(l *caf.Lock, j int, lucky bool) {
	l.Acquire(j)
	if lucky {
		l.Release(j)
		return
	}
	l.Release(j)
}

func earlyReturnBeforeAcquire(l *caf.Lock, j int, skip bool) {
	if skip {
		return
	}
	l.Acquire(j)
	l.Release(j)
}

// Stat-bearing acquire: the error path does not hold the lock, so returning
// without ReleaseStat there is correct discipline.
func statEarlyReturnOnError(l *caf.Lock, j int) caf.Stat {
	stat := l.AcquireStat(j)
	if stat != caf.StatOK {
		return stat
	}
	l.ReleaseStat(j)
	return caf.StatOK
}

func statDirectCondition(l *caf.Lock, j int) bool {
	if l.AcquireStat(j) == caf.StatOK {
		l.ReleaseStat(j)
		return true
	}
	return false
}

func statInitCondition(l *caf.Lock, j int) caf.Stat {
	if stat := l.AcquireStat(j); stat != caf.StatOK {
		return stat
	}
	defer l.ReleaseStat(j)
	return caf.StatOK
}

// Mixed variants pair up: ReleaseStat releases what Acquire acquired.
func statMixedRelease(l *caf.Lock, j int) {
	l.Acquire(j)
	l.ReleaseStat(j)
}

// FAIL IMAGE never returns: dying while holding a lock is the runtime lock's
// takeover path to recover, not a leak the program must fix.
func failImageWhileHolding(img *caf.Image, l *caf.Lock, j int) {
	if l.AcquireStat(j) == caf.StatOK {
		img.FailImage()
	}
}

// Same, with the Stat unchecked (the conservative must-held case): the only
// way out of the function still goes through FAIL IMAGE.
func failImageUnchecked(img *caf.Image, l *caf.Lock, j int) {
	_ = l.AcquireStat(j)
	img.FailImage()
}
