// Package lockclean exercises lockcheck with correct lock discipline.
package lockclean

import (
	"cafshmem/internal/caf"
	"cafshmem/internal/shmem"
)

func balanced(pe *shmem.PE, lck shmem.Sym) {
	pe.SetLock(lck, 0)
	pe.ClearLock(lck, 0)
}

func twoLocks(pe *shmem.PE, lck shmem.Sym) {
	pe.SetLock(lck, 0)
	pe.SetLock(lck, 1)
	pe.ClearLock(lck, 1)
	pe.ClearLock(lck, 0)
}

func deferRelease(l *caf.Lock, j int, abort bool) int {
	l.Acquire(j)
	defer l.Release(j)
	if abort {
		return 0
	}
	return 1
}

func deferClosureRelease(l *caf.Lock, j int) {
	l.Acquire(j)
	defer func() {
		l.Release(j)
	}()
}

func tryThenRelease(l *caf.Lock, j int) bool {
	if l.TryAcquire(j) {
		l.Release(j)
		return true
	}
	return false
}

func testLockLoop(pe *shmem.PE, lck shmem.Sym) {
	for !pe.TestLock(lck, 0) {
	}
	pe.ClearLock(lck, 0)
}

func releaseAfterBranches(l *caf.Lock, j int, lucky bool) {
	l.Acquire(j)
	if lucky {
		l.Release(j)
		return
	}
	l.Release(j)
}

func earlyReturnBeforeAcquire(l *caf.Lock, j int, skip bool) {
	if skip {
		return
	}
	l.Acquire(j)
	l.Release(j)
}
