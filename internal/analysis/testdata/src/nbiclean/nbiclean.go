// Package nbiclean exercises correct nonblocking-RMA usage patterns that
// synccheck must accept: Quiet before any read or source reuse, barriers as
// completion points, and overlap of independent computation with in-flight
// puts.
package nbiclean

import (
	"cafshmem/internal/shmem"
)

func quietThenRead(pe *shmem.PE, data shmem.Sym) []byte {
	pe.PutMemNBI(1, data, 0, []byte{1, 2, 3})
	pe.Quiet()
	out := make([]byte, 3)
	pe.GetMem(1, data, 0, out)
	return out
}

func quietThenReuse(pe *shmem.PE, data shmem.Sym) {
	buf := []byte{1, 2, 3, 4}
	pe.PutMemNBI(1, data, 0, buf)
	pe.Quiet()
	buf[0] = 9 // runtime no longer owns buf
	pe.PutMemNBI(1, data, 4, buf)
	pe.Quiet()
}

func overlapIndependentCompute(pe *shmem.PE, data shmem.Sym) int {
	src := []byte{1, 2, 3, 4}
	pe.PutMemNBI(1, data, 0, src)
	// Computation on unrelated state overlaps the in-flight put legally.
	sum := 0
	other := make([]byte, 8)
	for i := range other {
		other[i] = byte(i)
		sum += int(other[i])
	}
	pe.Quiet()
	return sum
}

func barrierCompletes(pe *shmem.PE, data shmem.Sym) []int64 {
	shmem.PutNBI(pe, 1, data, 0, []int64{7})
	pe.Barrier()
	return shmem.Get[int64](pe, 1, data, 0, 1)
}

func getNBIThenQuiet(pe *shmem.PE, data shmem.Sym) []int64 {
	dst := make([]int64, 4)
	shmem.GetNBI(pe, 1, data, 0, dst)
	pe.Quiet()
	return dst
}

func quietStatCompletes(pe *shmem.PE, data shmem.Sym) error {
	buf := []byte{5}
	pe.PutMemNBI(1, data, 0, buf)
	err := pe.QuietStat()
	buf[0] = 6
	return err
}

func fenceOrdersBlockingOnly(pe *shmem.PE, data shmem.Sym) {
	// Fence IS a legal completion point for blocking puts.
	pe.PutMem(1, data, 0, []byte{1})
	pe.Fence()
	out := make([]byte, 1)
	pe.GetMem(1, data, 0, out)
}

func distinctBuffersNoAlias(pe *shmem.PE, data shmem.Sym) {
	a := []byte{1}
	b := []byte{2}
	pe.PutMemNBI(1, data, 0, a)
	b[0] = 9 // b is not pinned
	pe.Quiet()
	_ = a
}

func stridedAndVectoredQuieted(pe *shmem.PE, data shmem.Sym) []byte {
	src := make([]byte, 32)
	pe.IPutMemNBI(1, data, 0, 16, 8, src[:16])
	pe.PutMemVNBI(1, data, []int64{64, 96}, 8, src[16:])
	pe.Quiet()
	src[0] = 1
	dst := make([]byte, 8)
	pe.GetMemNBI(1, data, 0, dst)
	pe.Quiet()
	return dst
}
