// Package syncbad seeds synccheck violations: reads of symmetric objects that
// can observe an incomplete one-sided write.
package syncbad

import (
	"cafshmem/internal/shmem"
)

func readAfterPut(pe *shmem.PE, data shmem.Sym) []byte {
	pe.PutMem(1, data, 0, []byte{1, 2, 3})
	out := make([]byte, 3)
	pe.GetMem(1, data, 0, out) // want "read of data before completing the one-sided write"
	return out
}

func typedReadAfterPut(pe *shmem.PE, data shmem.Sym) int64 {
	shmem.Put(pe, 1, data, 0, []int64{42})
	return shmem.G[int64](pe, 1, data, 0) // want "read of data before completing"
}

func branchPut(pe *shmem.PE, data shmem.Sym) []int64 {
	if pe.MyPE() == 0 {
		shmem.P(pe, 1, data, 0, int64(7))
	}
	return shmem.Get[int64](pe, 1, data, 0, 1) // want "one-sided write at line 23"
}

func loopCarried(pe *shmem.PE, data shmem.Sym) int64 {
	var sum int64
	for i := 0; i < 4; i++ {
		sum += shmem.G[int64](pe, 1, data, 0) // want "read of data before completing"
		shmem.P(pe, 1, data, 0, int64(i))
	}
	return sum
}

func atomicThenRead(pe *shmem.PE, flag shmem.Sym) int64 {
	pe.FetchAdd(1, flag, 0, 1)
	return shmem.G[int64](pe, 1, flag, 0) // want "read of flag before completing"
}

func deferredQuietTooLate(pe *shmem.PE, data shmem.Sym) []byte {
	pe.PutMem(1, data, 0, []byte{9})
	defer pe.Quiet() // runs at return, not here
	out := make([]byte, 1)
	pe.GetMem(1, data, 0, out) // want "read of data before completing"
	return out
}

func stridedPutThenGather(pe *shmem.PE, data shmem.Sym) []int64 {
	shmem.IPut(pe, 1, data, 0, 2, []int64{1, 2, 3}, 0, 1, 3)
	dst := make([]int64, 3)
	shmem.IGet(pe, 1, data, 0, 2, dst, 0, 1, 3) // want "read of data before completing"
	return dst
}

func vectoredPutThenGather(pe *shmem.PE, data shmem.Sym) []byte {
	src := make([]byte, 32)
	pe.PutMemV(1, data, []int64{0, 64}, 16, src)
	dst := make([]byte, 16)
	pe.GetMemV(1, data, []int64{0}, 16, dst) // want "read of data before completing"
	return dst
}
