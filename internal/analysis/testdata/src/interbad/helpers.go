// The helpers half of the interbad fixture: module-local functions whose
// effect summaries callers must see through. None of these are flagged on
// their own (the pending ops they create surface in the caller), except
// lockIt, whose by-design leak is suppressed with the ignore directive.
package interbad

import (
	"cafshmem/internal/shmem"
)

// putHelper launders a blocking put through a call frame: the caller's state
// must record data as pending after the call returns.
func putHelper(pe *shmem.PE, data shmem.Sym) {
	pe.PutMem(1, data, 0, []byte{1})
}

// nbiHelper issues a nonblocking put: the target stays pending and the
// source buffer stays pinned when it returns.
func nbiHelper(pe *shmem.PE, data shmem.Sym, buf []byte) {
	pe.PutMemNBI(1, data, 0, buf)
}

// fenceOnly orders blocking puts but never completes nonblocking ones.
func fenceOnly(pe *shmem.PE) {
	pe.Fence()
}

// readsHelper reads its symmetric argument without completing anything
// first: callers with a pending write to data race through this call.
func readsHelper(pe *shmem.PE, data shmem.Sym) []byte {
	out := make([]byte, 1)
	pe.GetMem(1, data, 0, out)
	return out
}

// quietHelper is a genuine completion point for the default context.
func quietHelper(pe *shmem.PE) {
	pe.Quiet()
}

// barrierHelper executes a collective unconditionally: calling it from a
// PE-dependent branch diverges the SPMD execution.
func barrierHelper(pe *shmem.PE) {
	pe.Barrier()
}

// lockIt acquires on behalf of its caller; the caller owns the release, so
// the intraprocedural leak report is suppressed here and the summary makes
// the caller accountable instead.
func lockIt(pe *shmem.PE, lck shmem.Sym) {
	pe.SetLock(lck, 0)
	//shmemvet:ignore lockcheck
}

// unlockIt releases a lock its caller holds (release-only helpers are the
// caller's responsibility and are not flagged here).
func unlockIt(pe *shmem.PE, lck shmem.Sym) {
	pe.ClearLock(lck, 0)
}
