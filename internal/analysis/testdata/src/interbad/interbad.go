// Package interbad seeds the interprocedural violations: completion-contract
// breaks, lock leaks, and collective divergence that only become visible when
// the analyzers consume the helpers' effect summaries (helpers.go) instead of
// treating every module-local call as an opaque completion point.
package interbad

import (
	"cafshmem/internal/shmem"
)

func launderedPut(pe *shmem.PE, data shmem.Sym) []byte {
	putHelper(pe, data)
	out := make([]byte, 1)
	pe.GetMem(1, data, 0, out) // want "read of data before completing the one-sided write"
	return out
}

func launderedNBI(pe *shmem.PE, data shmem.Sym) {
	buf := []byte{1}
	nbiHelper(pe, data, buf)
	fenceOnly(pe) // a fence through a helper still leaves the NBI put in flight
	buf[0] = 2    // want "write to NBI source buffer buf"
	pe.Quiet()
}

func readThroughHelper(pe *shmem.PE, data shmem.Sym) {
	pe.PutMem(1, data, 0, []byte{3})
	_ = readsHelper(pe, data) // want "call to readsHelper reads data before completing the one-sided write"
	pe.Quiet()
}

// quietedThroughHelper is the control: the helper's Quiet completes the put,
// so the read is clean — proving the summaries clear state, not just add it.
func quietedThroughHelper(pe *shmem.PE, data shmem.Sym) []byte {
	pe.PutMem(1, data, 0, []byte{1})
	quietHelper(pe)
	out := make([]byte, 1)
	pe.GetMem(1, data, 0, out)
	return out
}

func leakThroughHelper(pe *shmem.PE, lck shmem.Sym, fail bool) {
	lockIt(pe, lck)
	if fail {
		return // want "still holding the lock"
	}
	unlockIt(pe, lck)
}

func collectiveThroughHelper(pe *shmem.PE) {
	if pe.MyPE() == 0 {
		barrierHelper(pe) // want "collective PE.Barrier reached through the call to barrierHelper"
	}
	pe.Barrier()
}
