// Package lockbad seeds lockcheck violations: leaked, double-acquired, and
// wrongly-released PGAS locks.
package lockbad

import (
	"cafshmem/internal/caf"
	"cafshmem/internal/shmem"
)

func leakOnEarlyReturn(pe *shmem.PE, lck shmem.Sym, fail bool) {
	pe.SetLock(lck, 0)
	if fail {
		return // want "still holding the lock acquired at line 11"
	}
	pe.ClearLock(lck, 0)
}

func releaseWrongIndex(pe *shmem.PE, lck shmem.Sym) {
	pe.SetLock(lck, 0)
	pe.ClearLock(lck, 1) // want "not acquired on this path"
	pe.ClearLock(lck, 0)
}

func doubleAcquire(l *caf.Lock, j int) {
	l.Acquire(j)
	l.Acquire(j) // want "acquired again without an intervening release"
	l.Release(j)
}

func leakAtEnd(l *caf.Lock, j int) {
	l.Acquire(j)
} // want "still holding the lock acquired at line 31"

func leakInSwitch(l *caf.Lock, j, mode int) {
	l.Acquire(j)
	switch mode {
	case 0:
		l.Release(j)
	default:
		return // want "still holding the lock acquired at line 35"
	}
}

// The success path of a Stat-bearing acquire holds the lock; an early return
// there (here: on an unrelated condition) skips ReleaseStat and leaks it.
func statLeakOnSuccessPath(l *caf.Lock, j int, abort bool) caf.Stat {
	stat := l.AcquireStat(j)
	if stat != caf.StatOK {
		return stat
	}
	if abort {
		return caf.StatOK // want "still holding the lock acquired at line 47"
	}
	l.ReleaseStat(j)
	return caf.StatOK
}

// Ignoring the returned Stat altogether does not hide the leak.
func statUncheckedLeak(l *caf.Lock, j int) {
	_ = l.AcquireStat(j)
} // want "still holding the lock acquired at line 60"

// Releasing on the failure branch releases a lock that was never acquired.
func statReleaseOnErrorPath(l *caf.Lock, j int) {
	if l.AcquireStat(j) != caf.StatOK {
		l.ReleaseStat(j) // want "not acquired on this path"
		return
	}
	l.ReleaseStat(j)
}
