// Package lockbad seeds lockcheck violations: leaked, double-acquired, and
// wrongly-released PGAS locks.
package lockbad

import (
	"cafshmem/internal/caf"
	"cafshmem/internal/shmem"
)

func leakOnEarlyReturn(pe *shmem.PE, lck shmem.Sym, fail bool) {
	pe.SetLock(lck, 0)
	if fail {
		return // want "still holding the lock acquired at line 11"
	}
	pe.ClearLock(lck, 0)
}

func releaseWrongIndex(pe *shmem.PE, lck shmem.Sym) {
	pe.SetLock(lck, 0)
	pe.ClearLock(lck, 1) // want "not acquired on this path"
	pe.ClearLock(lck, 0)
}

func doubleAcquire(l *caf.Lock, j int) {
	l.Acquire(j)
	l.Acquire(j) // want "acquired again without an intervening release"
	l.Release(j)
}

func leakAtEnd(l *caf.Lock, j int) {
	l.Acquire(j)
} // want "still holding the lock acquired at line 31"

func leakInSwitch(l *caf.Lock, j, mode int) {
	l.Acquire(j)
	switch mode {
	case 0:
		l.Release(j)
	default:
		return // want "still holding the lock acquired at line 35"
	}
}
