// Package symclean exercises symcheck with correct handle usage: handles come
// from collective Malloc, are addressed via At, stay in function scope, and a
// deliberate whole-partition view is annotated.
package symclean

import (
	"cafshmem/internal/shmem"
)

func allocateAndUse(pe *shmem.PE) {
	data := pe.Malloc(64)
	pe.PutMem(1, data, data.At(8), []byte{1})
	pe.Quiet()
	copied := data
	pe.Free(copied)
}

func passThrough(pe *shmem.PE, data shmem.Sym) int64 {
	return data.At(0)
}

// partitionView models the CAF transport's legitimate whole-segment handle;
// the annotation keeps symcheck quiet about it.
func partitionView() shmem.Sym {
	//shmemvet:allow symcheck
	return shmem.Sym{Off: 0, Size: 1 << 20}
}
