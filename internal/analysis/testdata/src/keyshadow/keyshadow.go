// Package keyshadow pins the object-identity fix in lockcheck's Stat
// tracking: bindings named "stat" are keyed by their types.Object, not their
// spelling, so a shadowed inner binding for a DIFFERENT lock's AcquireStat
// must not hijack branches taken on the outer binding. Under the old
// name-keyed map, the final branch on the outer stat resolved to lockB's
// binding and the analyzer reported lockA as leaked. The fixture is clean.
package keyshadow

import (
	"cafshmem/internal/caf"
)

func shadowedStat(a, b *caf.Lock, j int) caf.Stat {
	stat := a.AcquireStat(j)
	if stat != caf.StatOK {
		return stat
	}
	{
		stat := b.AcquireStat(j) // shadows the outer binding; tracks lock b
		if stat != caf.StatOK {
			a.ReleaseStat(j)
			return stat
		}
		b.ReleaseStat(j)
	}
	if stat != caf.StatOK {
		// Branch on the OUTER stat: on this path lock a's acquire failed,
		// so returning without ReleaseStat is correct.
		return stat
	}
	a.ReleaseStat(j)
	return caf.StatOK
}
