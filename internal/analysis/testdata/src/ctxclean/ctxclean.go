// Package ctxclean exercises correct communication-context usage that
// synccheck must accept: per-context Quiet as the completion point, Destroy's
// implied quiet, per-destination QuietTarget, and the independence of the
// default context from created ones.
package ctxclean

import (
	"cafshmem/internal/shmem"
)

func ctxQuietThenRead(pe *shmem.PE, data shmem.Sym) []byte {
	ctx := pe.CtxCreate()
	ctx.PutMemNBI(1, data, 0, []byte{1, 2, 3})
	ctx.Quiet()
	out := make([]byte, 3)
	pe.GetMem(1, data, 0, out)
	ctx.Destroy()
	return out
}

func destroyImpliesQuiet(pe *shmem.PE, data shmem.Sym) []byte {
	ctx := pe.CtxCreate()
	ctx.PutMemNBI(1, data, 0, []byte{9})
	ctx.Destroy()
	out := make([]byte, 1)
	pe.GetMem(1, data, 0, out)
	return out
}

func quietTargetCompletes(pe *shmem.PE, data shmem.Sym) []byte {
	ctx := pe.CtxCreate()
	ctx.PutMemNBI(1, data, 0, []byte{5})
	ctx.QuietTarget(1)
	out := make([]byte, 1)
	pe.GetMem(1, data, 0, out)
	ctx.Destroy()
	return out
}

func ctxQuietReleasesSrc(pe *shmem.PE, data shmem.Sym) {
	ctx := pe.CtxCreate()
	buf := []byte{1, 2, 3, 4}
	ctx.PutMemNBI(1, data, 0, buf)
	ctx.Quiet()
	buf[0] = 9 // the owning context completed; buf is free
	ctx.Destroy()
}

func defaultCtxIndependent(pe *shmem.PE, data, other shmem.Sym) []byte {
	// A created context's in-flight traffic to one symmetric object does not
	// taint default-context completion of a DIFFERENT object.
	ctx := pe.CtxCreate()
	ctx.PutMemNBI(1, data, 0, []byte{1})
	pe.PutMemNBI(1, other, 0, []byte{2})
	pe.Quiet()
	out := make([]byte, 1)
	pe.GetMem(1, other, 0, out)
	ctx.Destroy()
	return out
}

func ctxQuietStatCompletes(pe *shmem.PE, data shmem.Sym) error {
	ctx := pe.CtxCreate()
	buf := []byte{5}
	ctx.PutMemNBI(1, data, 0, buf)
	err := ctx.QuietStat()
	buf[0] = 6
	ctx.Destroy()
	return err
}

func ctxGetNBIThenQuiet(pe *shmem.PE, data shmem.Sym) []byte {
	ctx := pe.CtxCreate()
	dst := make([]byte, 4)
	ctx.GetMemNBI(1, data, 0, dst)
	ctx.Quiet()
	ctx.Destroy()
	return dst
}

func ctxPutSignalQuieted(pe *shmem.PE, data, flag shmem.Sym) int64 {
	ctx := pe.CtxCreate()
	ctx.PutSignalNBI(1, data, 0, []byte{1, 2}, flag, 0, 1)
	ctx.Quiet()
	v := shmem.G[int64](pe, 1, flag, 0)
	ctx.Destroy()
	return v
}

func overlapTwoContexts(pe *shmem.PE, data shmem.Sym) {
	// Two traffic classes quiesce independently; neither read races: each
	// waits for its own context first.
	a := pe.CtxCreate()
	b := pe.CtxCreate()
	a.PutMemNBI(1, data, 0, []byte{1})
	b.PutMemNBI(1, data, 8, []byte{2})
	a.Quiet()
	b.Quiet()
	out := make([]byte, 2)
	pe.GetMem(1, data, 0, out)
	a.Destroy()
	b.Destroy()
}
