// Package nbibad seeds synccheck's nonblocking-RMA violations: reads that
// race un-quieted put_nbi traffic, Fence mistaken for a completion point, and
// reuse of a source buffer the runtime still owns.
package nbibad

import (
	"cafshmem/internal/shmem"
)

func readAfterPutNBI(pe *shmem.PE, data shmem.Sym) []byte {
	pe.PutMemNBI(1, data, 0, []byte{1, 2, 3})
	out := make([]byte, 3)
	pe.GetMem(1, data, 0, out) // want "read of data before completing the nonblocking write"
	return out
}

func fenceDoesNotCompleteNBI(pe *shmem.PE, data shmem.Sym) []byte {
	pe.PutMemNBI(1, data, 0, []byte{9})
	pe.Fence() // orders blocking puts only — put_nbi stays in flight
	out := make([]byte, 1)
	pe.GetMem(1, data, 0, out) // want "nonblocking write at line 18"
	return out
}

func quietTooLateForTypedNBI(pe *shmem.PE, data shmem.Sym) int64 {
	shmem.PutNBI(pe, 1, data, 0, []int64{42})
	v := shmem.G[int64](pe, 1, data, 0) // want "read of data before completing the nonblocking write"
	pe.Quiet()
	return v
}

func srcReuseBeforeQuiet(pe *shmem.PE, data shmem.Sym) {
	buf := []byte{1, 2, 3, 4}
	pe.PutMemNBI(1, data, 0, buf)
	buf[0] = 9 // want "write to NBI source buffer buf before Quiet"
	pe.Quiet()
}

func typedSrcReuseBeforeQuiet(pe *shmem.PE, data shmem.Sym) {
	vals := []int64{1, 2, 3}
	shmem.PutNBI(pe, 1, data, 0, vals)
	vals[1]++ // want "write to NBI source buffer vals before Quiet"
	pe.Quiet()
}

func copyIntoPinnedBuffer(pe *shmem.PE, data shmem.Sym) {
	buf := make([]byte, 16)
	pe.PutMemNBI(1, data, 0, buf[2:6])
	copy(buf, []byte{7, 7, 7}) // want "write to NBI source buffer buf"
	pe.Quiet()
}

func stridedSrcReuse(pe *shmem.PE, data shmem.Sym) {
	src := make([]byte, 24)
	pe.IPutMemNBI(1, data, 0, 16, 8, src)
	src[8] = 1 // want "write to NBI source buffer src"
	pe.Quiet()
}

func vectoredReadRace(pe *shmem.PE, data shmem.Sym) []byte {
	src := make([]byte, 32)
	pe.PutMemVNBI(1, data, []int64{0, 64}, 16, src)
	dst := make([]byte, 16)
	pe.GetMemV(1, data, []int64{0}, 16, dst) // want "read of data before completing the nonblocking write"
	pe.Quiet()
	return dst
}

func getNBIRacesBlockingPut(pe *shmem.PE, data shmem.Sym) []int64 {
	shmem.Put(pe, 1, data, 0, []int64{5})
	dst := make([]int64, 1)
	shmem.GetNBI(pe, 1, data, 0, dst) // want "read of data before completing the one-sided write"
	pe.Quiet()
	return dst
}

func loopCarriedNBISrc(pe *shmem.PE, data shmem.Sym) {
	buf := []byte{0}
	for i := 0; i < 4; i++ {
		buf[0] = byte(i) // want "write to NBI source buffer buf"
		pe.PutMemNBI(1, data, int64(i), buf)
	}
	pe.Quiet()
}
