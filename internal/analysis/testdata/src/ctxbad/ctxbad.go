// Package ctxbad seeds synccheck's communication-context violations: the
// OpenSHMEM 1.4 contract that PE-level Quiet/Barrier never complete
// context-scoped nonblocking ops, that one context's Quiet never completes
// another's, and that a context put pins its source buffer until the OWNING
// context's Quiet.
package ctxbad

import (
	"cafshmem/internal/shmem"
)

func peQuietDoesNotCompleteCtx(pe *shmem.PE, data shmem.Sym) []byte {
	ctx := pe.CtxCreate()
	ctx.PutMemNBI(1, data, 0, []byte{1, 2, 3})
	pe.Quiet() // completes the default context only
	out := make([]byte, 3)
	pe.GetMem(1, data, 0, out) // want "before the owning context completes its nonblocking write"
	ctx.Destroy()
	return out
}

func barrierDoesNotCompleteCtx(pe *shmem.PE, data shmem.Sym) []byte {
	ctx := pe.CtxCreate()
	ctx.PutMemNBI(1, data, 0, []byte{9})
	pe.Barrier() // collectives quiet the default context, not created ones
	out := make([]byte, 1)
	pe.GetMem(1, data, 0, out) // want "nonblocking write at line 24"
	ctx.Destroy()
	return out
}

func wrongCtxQuiet(pe *shmem.PE, data shmem.Sym) []byte {
	a := pe.CtxCreate()
	b := pe.CtxCreate()
	a.PutMemNBI(1, data, 0, []byte{1})
	b.Quiet() // quiesces b's (empty) streams; a's put stays in flight
	out := make([]byte, 1)
	pe.GetMem(1, data, 0, out) // want "before the owning context completes its nonblocking write"
	a.Destroy()
	b.Destroy()
	return out
}

func ctxSrcReuseBeforeCtxQuiet(pe *shmem.PE, data shmem.Sym) {
	ctx := pe.CtxCreate()
	buf := []byte{1, 2, 3, 4}
	ctx.PutMemNBI(1, data, 0, buf)
	pe.Quiet() // wrong completion environment: buf is still pinned
	buf[0] = 9 // want "write to NBI source buffer buf before the owning context's Quiet"
	ctx.Destroy()
}

func ctxFenceIsNotCompletion(pe *shmem.PE, data shmem.Sym) []byte {
	ctx := pe.CtxCreate()
	ctx.PutMemNBI(1, data, 0, []byte{7})
	ctx.Fence() // orders the context's puts; completes nothing
	out := make([]byte, 1)
	pe.GetMem(1, data, 0, out) // want "before the owning context completes its nonblocking write"
	ctx.Destroy()
	return out
}

func ctxPutSignalRace(pe *shmem.PE, data, flag shmem.Sym) int64 {
	ctx := pe.CtxCreate()
	ctx.PutSignalNBI(1, data, 0, []byte{1, 2}, flag, 0, 1)
	v := shmem.G[int64](pe, 1, flag, 0) // want "before the owning context completes its nonblocking write"
	ctx.Destroy()
	return v
}
