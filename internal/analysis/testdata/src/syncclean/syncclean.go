// Package syncclean exercises the synccheck analyzer with correct code: every
// read of a symmetric object is separated from prior writes by an explicit
// completion point.
package syncclean

import (
	"cafshmem/internal/shmem"
)

func putQuietGet(pe *shmem.PE, data shmem.Sym) []byte {
	pe.PutMem(1, data, 0, []byte{1, 2, 3})
	pe.Quiet()
	out := make([]byte, 3)
	pe.GetMem(1, data, 0, out)
	return out
}

func putBarrierGet(pe *shmem.PE, data shmem.Sym) int64 {
	shmem.Put(pe, 1, data, 0, []int64{42})
	pe.Barrier()
	return shmem.G[int64](pe, 1, data, 0)
}

func putFenceGet(pe *shmem.PE, data shmem.Sym) int64 {
	shmem.P(pe, 1, data, 0, int64(7))
	pe.Fence()
	return shmem.G[int64](pe, 1, data, 0)
}

func distinctObjects(pe *shmem.PE, a, b shmem.Sym) int64 {
	shmem.P(pe, 1, a, 0, int64(1))
	return shmem.G[int64](pe, 1, b, 0)
}

func quietInHelper(pe *shmem.PE, data shmem.Sym) int64 {
	shmem.P(pe, 1, data, 0, int64(5))
	flush(pe)
	return shmem.G[int64](pe, 1, data, 0)
}

func flush(pe *shmem.PE) {
	pe.Quiet()
}

func branchesBothQuiet(pe *shmem.PE, data shmem.Sym, wide bool) []byte {
	if wide {
		pe.PutMem(1, data, 0, []byte{1, 2})
		pe.Quiet()
	} else {
		pe.PutMem(1, data, 0, []byte{1})
		pe.Barrier()
	}
	out := make([]byte, 2)
	pe.GetMem(1, data, 0, out)
	return out
}

func collectiveCompletes(pe *shmem.PE, data shmem.Sym) int64 {
	shmem.P(pe, 0, data, 0, int64(3))
	pe.Broadcast(0, data, 8)
	return shmem.G[int64](pe, 0, data, 0)
}

func writeOnly(pe *shmem.PE, data shmem.Sym) {
	pe.PutMem(1, data, 0, []byte{1})
	pe.FetchAdd(1, data, 1, 1)
}

func vectoredPutQuietedThenGather(pe *shmem.PE, data shmem.Sym) []byte {
	src := make([]byte, 32)
	pe.PutMemV(1, data, []int64{0, 64}, 16, src)
	pe.Quiet()
	dst := make([]byte, 16)
	pe.GetMemV(1, data, []int64{0}, 16, dst)
	return dst
}
