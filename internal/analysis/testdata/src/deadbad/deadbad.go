// Package deadbad seeds the deadlockcheck violations: signal-class waits
// that no code in the package can ever satisfy. In SPMD execution every
// image runs this same code, so if no function — directly or through a
// helper — issues the matching notify, the partner image never will either
// and every wait parks forever.
package deadbad

import (
	"cafshmem/internal/caf"
)

// waitForPost blocks on an event that nothing in this package ever posts.
func waitForPost(ev *caf.Event) {
	ev.Wait(1) // want "wait on a caf.Event class signal, but no code in this package ever issues the matching notify"
}

// waitViaHelper launders the wait through a call: the summary carries the
// blocked class to the caller, which is reported too.
func waitViaHelper(s *caf.Signal, j int) {
	blockOn(s, j) // want "wait on a caf.Signal class signal"
}

func blockOn(s *caf.Signal, j int) {
	s.Wait(j) // want "wait on a caf.Signal class signal"
}
