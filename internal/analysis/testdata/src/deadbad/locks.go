// The lock-order half of deadbad: two functions take the same pair of
// package-level locks in opposite orders. Each order is locally balanced and
// locally fine — only the module-wide union of lock-order edges exposes the
// ABBA cycle: image 1 in forward holds lockA and queues on lockB while
// image 2 in backward holds lockB and queues on lockA.
package deadbad

import (
	"cafshmem/internal/caf"
)

var (
	lockA *caf.Lock
	lockB *caf.Lock
)

func forward(j int) {
	lockA.Acquire(j)
	lockB.Acquire(j) // want "completes a lock-order cycle"
	lockB.Release(j)
	lockA.Release(j)
}

func backward(j int) {
	lockB.Acquire(j)
	lockA.Acquire(j) // want "completes a lock-order cycle"
	lockA.Release(j)
	lockB.Release(j)
}
