// The helpers half of the interclean fixture: the same call-laundering
// shapes as interbad, but every helper leaves its caller in a completed,
// balanced state — so the summary-aware analyzers must stay silent.
package interclean

import (
	"cafshmem/internal/caf"
	"cafshmem/internal/shmem"
)

// putAndQuiet completes its own put before returning: no pending state
// escapes into the caller.
func putAndQuiet(pe *shmem.PE, data shmem.Sym) {
	pe.PutMem(1, data, 0, []byte{1})
	pe.Quiet()
}

// nbiHelper issues a nonblocking put; pairing with quietHelper in the caller
// must clear both the target and the pinned source buffer.
func nbiHelper(pe *shmem.PE, data shmem.Sym, buf []byte) {
	pe.PutMemNBI(1, data, 0, buf)
}

func quietHelper(pe *shmem.PE) {
	pe.Quiet()
}

// quietThenRead quiesces before reading: the read happens after the internal
// completion, so the summary records the Quiet but no racy read of data.
func quietThenRead(pe *shmem.PE, data shmem.Sym) []byte {
	pe.Quiet()
	out := make([]byte, 1)
	pe.GetMem(1, data, 0, out)
	return out
}

// lockedUpdate acquires and releases internally: its summary shows no net
// acquisition, so callers are not treated as lock holders.
func lockedUpdate(l *caf.Lock, j int) {
	l.Acquire(j)
	l.Release(j)
}

// barrierHelper is collective; callers must reach it on every PE.
func barrierHelper(pe *shmem.PE) {
	pe.Barrier()
}
