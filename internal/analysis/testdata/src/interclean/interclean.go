// Package interclean is the negative control for the interprocedural
// analyzers: helper calls that genuinely complete, balance, or synchronize
// must not be flagged just because the work crosses a function boundary.
package interclean

import (
	"cafshmem/internal/caf"
	"cafshmem/internal/shmem"
)

func readAfterCompletedHelper(pe *shmem.PE, data shmem.Sym) []byte {
	putAndQuiet(pe, data)
	out := make([]byte, 1)
	pe.GetMem(1, data, 0, out)
	return out
}

func nbiQuietedThroughHelper(pe *shmem.PE, data shmem.Sym) {
	buf := []byte{1}
	nbiHelper(pe, data, buf)
	quietHelper(pe)
	buf[0] = 2
}

func putThenHelperReadsAfterQuiet(pe *shmem.PE, data shmem.Sym) []byte {
	pe.PutMem(1, data, 0, []byte{7})
	return quietThenRead(pe, data)
}

func balancedLockHelper(l *caf.Lock, j int) {
	lockedUpdate(l, j)
}

func collectiveOnAllPEs(pe *shmem.PE) {
	barrierHelper(pe)
	if pe.MyPE() == 0 {
		// PE-dependent work that is NOT collective is fine.
		_ = pe.MyPE()
	}
	pe.Barrier()
}
