// Package collbad seeds collectivecheck violations: collectives reached only
// by a PE-dependent subset of the job (SPMD divergence).
package collbad

import (
	"cafshmem/internal/caf"
	"cafshmem/internal/shmem"
)

func rootOnlyMalloc(pe *shmem.PE) {
	if pe.MyPE() == 0 {
		pe.Malloc(64) // want "collective PE.Malloc under the PE-dependent condition at line 11"
	}
}

func taintedVariable(img *caf.Image) {
	me := img.ThisImage()
	if me == 1 {
		img.SyncAll() // want "collective Image.SyncAll under the PE-dependent condition"
	}
}

func taintedLoopBound(pe *shmem.PE) {
	for i := 0; i < pe.MyPE(); i++ {
		pe.Barrier() // want "collective PE.Barrier under the PE-dependent condition"
	}
}

func divergentAllocate(img *caf.Image) {
	if img.ThisImage() == 1 {
		caf.Allocate[int64](img, 4) // want "collective Allocate under the PE-dependent condition"
	}
}

func divergentSwitch(pe *shmem.PE, data shmem.Sym) {
	switch pe.MyPE() {
	case 0:
		pe.Broadcast(0, data, 8) // want "collective PE.Broadcast under the PE-dependent condition"
	default:
	}
}

func freeInElse(pe *shmem.PE, data shmem.Sym) {
	if pe.MyPE() == 0 {
		pe.PutMem(1, data, 0, []byte{1})
	} else {
		pe.Free(data) // want "collective PE.Free under the PE-dependent condition"
	}
}
