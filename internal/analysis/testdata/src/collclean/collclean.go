// Package collclean exercises collectivecheck with correct SPMD code: every
// collective is reached by all PEs, and PE-dependent branches contain only
// local or point-to-point work.
package collclean

import (
	"cafshmem/internal/caf"
	"cafshmem/internal/shmem"
)

func everyoneAllocates(pe *shmem.PE) shmem.Sym {
	data := pe.Malloc(64)
	pe.Barrier()
	return data
}

func rootDoesLocalWork(pe *shmem.PE, data shmem.Sym) {
	if pe.MyPE() == 0 {
		pe.PutMem(1, data, 0, []byte{1, 2, 3})
		pe.Quiet()
	}
	pe.Barrier()
}

func sizeDependentIsFine(pe *shmem.PE) {
	if pe.NumPEs() > 2 {
		pe.Barrier()
	}
}

func collectiveAfterDivergence(img *caf.Image) int {
	me := img.ThisImage()
	n := 0
	if me == 1 {
		n = 10
	}
	img.SyncAll()
	return n
}

func loopOverAllImages(img *caf.Image) {
	for i := 0; i < img.NumImages(); i++ {
		img.SyncAll()
	}
}
