// Package symbad seeds symcheck violations: forged, mutated, and
// world-escaping symmetric handles.
package symbad

import (
	"cafshmem/internal/shmem"
)

var Leaked shmem.Sym // want "package-level Leaked holds a symmetric handle"

type registry struct {
	handles []shmem.Sym
}

var global registry // want "package-level global holds a symmetric handle"

func forge() shmem.Sym {
	return shmem.Sym{Off: 128, Size: 64} // want "symmetric handle constructed by hand"
}

func retargetOff(s shmem.Sym) shmem.Sym {
	s.Off += 8 // want "mutation of symmetric handle field Off"
	return s
}

func retargetSize(s *shmem.Sym) {
	s.Size = 4096 // want "mutation of symmetric handle field Size"
}
