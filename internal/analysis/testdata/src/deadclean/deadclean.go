// Package deadclean is the negative control for deadlockcheck: every wait
// has a matching notify somewhere in the package (any function, including
// escaping closures — SPMD means the partner image runs that code too), and
// nested locks are taken in one consistent order everywhere.
package deadclean

import (
	"cafshmem/internal/caf"
)

var (
	lockA *caf.Lock
	lockB *caf.Lock
)

// consumer blocks on the event that producer posts: matched, not flagged.
func consumer(ev *caf.Event) {
	ev.Wait(1)
}

func producer(ev *caf.Event, j int) {
	ev.Post(j)
}

// The signal notify lives inside an escaping goroutine body. Waits inside
// literals are excluded from summaries (they may never run), but notifies
// still count as producers — the partner image can reach them.
func signalConsumer(s *caf.Signal, j int) {
	s.Wait(j)
}

func signalProducer(s *caf.Signal, j int) {
	go func() {
		s.Notify(j)
	}()
}

// Both nesting sites take lockA before lockB: the lock-order graph has a
// single edge and no cycle.
func nested(j int) {
	lockA.Acquire(j)
	lockB.Acquire(j)
	lockB.Release(j)
	lockA.Release(j)
}

func nestedElsewhere(j int) {
	lockA.Acquire(j)
	lockB.Acquire(j)
	lockB.Release(j)
	lockA.Release(j)
}
