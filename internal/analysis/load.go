package analysis

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// Loader parses and type-checks packages of this module using only the
// standard library: module-local import paths resolve to source directories
// under the module root, and standard-library imports go through the
// compiler's source importer. One Loader caches every package it checks, so
// loading all of ./... type-checks each dependency exactly once.
type Loader struct {
	Fset    *token.FileSet
	root    string // module root directory
	module  string // module path from go.mod
	std     types.Importer
	pkgs    map[string]*Package // by import path
	order   []string            // import paths in completion order (callees first)
	loading map[string]bool     // cycle detection
}

// Package is one parsed, type-checked package plus everything the analyzers
// need to inspect it.
type Package struct {
	Path      string
	Dir       string
	Files     []*ast.File
	Fset      *token.FileSet
	Types     *types.Package
	Info      *types.Info
	TypeErrs  []error // type errors, collected rather than fatal
	filenames []string
}

// NewLoader creates a loader rooted at the module containing dir (found by
// walking up to go.mod).
func NewLoader(dir string) (*Loader, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	root := abs
	for {
		if _, err := os.Stat(filepath.Join(root, "go.mod")); err == nil {
			break
		}
		parent := filepath.Dir(root)
		if parent == root {
			return nil, fmt.Errorf("analysis: no go.mod found above %s", abs)
		}
		root = parent
	}
	mod, err := modulePath(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	return &Loader{
		Fset:    fset,
		root:    root,
		module:  mod,
		std:     importer.ForCompiler(fset, "source", nil),
		pkgs:    map[string]*Package{},
		loading: map[string]bool{},
	}, nil
}

// ModuleRoot returns the module root directory.
func (l *Loader) ModuleRoot() string { return l.root }

// ModulePath returns the module path declared in go.mod.
func (l *Loader) ModulePath() string { return l.module }

func modulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			p := strings.TrimSpace(rest)
			if unq, err := strconv.Unquote(p); err == nil {
				p = unq
			}
			return p, nil
		}
	}
	return "", fmt.Errorf("analysis: no module directive in %s", gomod)
}

// Load parses and type-checks the package in the given directory. The import
// path is derived from the directory's position under the module root;
// directories outside the module (fixtures under testdata) get a synthetic
// path.
func (l *Loader) Load(dir string) (*Package, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	path := l.importPathFor(abs)
	return l.loadPath(path, abs)
}

func (l *Loader) importPathFor(abs string) string {
	if rel, err := filepath.Rel(l.root, abs); err == nil && !strings.HasPrefix(rel, "..") {
		if rel == "." {
			return l.module
		}
		return l.module + "/" + filepath.ToSlash(rel)
	}
	return "shmemvet.fixture/" + filepath.Base(abs)
}

func (l *Loader) loadPath(path, dir string) (*Package, error) {
	if p, ok := l.pkgs[path]; ok {
		return p, nil
	}
	if l.loading[path] {
		return nil, fmt.Errorf("analysis: import cycle through %s", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)

	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		n := e.Name()
		if e.IsDir() || !strings.HasSuffix(n, ".go") || strings.HasSuffix(n, "_test.go") {
			continue
		}
		names = append(names, n)
	}
	sort.Strings(names)
	if len(names) == 0 {
		return nil, fmt.Errorf("analysis: no buildable Go files in %s", dir)
	}

	pkg := &Package{Path: path, Dir: dir, Fset: l.Fset}
	for _, n := range names {
		fn := filepath.Join(dir, n)
		f, err := parser.ParseFile(l.Fset, fn, nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		pkg.Files = append(pkg.Files, f)
		pkg.filenames = append(pkg.filenames, fn)
	}

	pkg.Info = &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
		Instances:  map[*ast.Ident]types.Instance{},
	}
	conf := types.Config{
		Importer: &chainImporter{l: l},
		Error:    func(err error) { pkg.TypeErrs = append(pkg.TypeErrs, err) },
	}
	tpkg, err := conf.Check(path, l.Fset, pkg.Files, pkg.Info)
	if err != nil && tpkg == nil {
		return nil, err
	}
	pkg.Types = tpkg
	l.pkgs[path] = pkg
	l.order = append(l.order, path)
	return pkg, nil
}

// Packages returns every package this loader has type-checked so far, in
// completion order: a package's module-local imports always precede it. The
// interprocedural layer (callgraph.go) builds its view of the module from
// this list.
func (l *Loader) Packages() []*Package {
	out := make([]*Package, 0, len(l.order))
	for _, path := range l.order {
		out = append(out, l.pkgs[path])
	}
	return out
}

// chainImporter resolves module-local paths from source under the module
// root and delegates everything else to the standard-library source importer.
type chainImporter struct{ l *Loader }

func (c *chainImporter) Import(path string) (*types.Package, error) {
	l := c.l
	if path == l.module || strings.HasPrefix(path, l.module+"/") {
		rel := strings.TrimPrefix(strings.TrimPrefix(path, l.module), "/")
		p, err := l.loadPath(path, filepath.Join(l.root, filepath.FromSlash(rel)))
		if err != nil {
			return nil, err
		}
		return p.Types, nil
	}
	return l.std.Import(path)
}
