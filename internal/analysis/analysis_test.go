package analysis

import (
	"strings"
	"testing"
)

func TestSyncCheckFlagsSeededViolations(t *testing.T) { checkFixture(t, SyncCheck, "syncbad") }
func TestSyncCheckPassesCleanCode(t *testing.T)       { checkFixture(t, SyncCheck, "syncclean") }

func TestSyncCheckFlagsNBIViolations(t *testing.T) { checkFixture(t, SyncCheck, "nbibad") }
func TestSyncCheckPassesCleanNBICode(t *testing.T) { checkFixture(t, SyncCheck, "nbiclean") }

func TestSyncCheckFlagsCtxViolations(t *testing.T) { checkFixture(t, SyncCheck, "ctxbad") }
func TestSyncCheckPassesCleanCtxCode(t *testing.T) { checkFixture(t, SyncCheck, "ctxclean") }

func TestLockCheckFlagsSeededViolations(t *testing.T) { checkFixture(t, LockCheck, "lockbad") }
func TestLockCheckPassesCleanCode(t *testing.T)       { checkFixture(t, LockCheck, "lockclean") }

func TestCollectiveCheckFlagsSeededViolations(t *testing.T) {
	checkFixture(t, CollectiveCheck, "collbad")
}
func TestCollectiveCheckPassesCleanCode(t *testing.T) { checkFixture(t, CollectiveCheck, "collclean") }

func TestSymCheckFlagsSeededViolations(t *testing.T) { checkFixture(t, SymCheck, "symbad") }
func TestSymCheckPassesCleanCode(t *testing.T)       { checkFixture(t, SymCheck, "symclean") }

// The interprocedural fixtures run the three summary-consuming analyzers as
// a suite: each violation is laundered through a helper in a second file, so
// the expectations only hold when summaries flow across function and file
// boundaries.
func TestInterproceduralFlagsSeededViolations(t *testing.T) {
	checkFixtureSuite(t, []*Analyzer{SyncCheck, LockCheck, CollectiveCheck}, "interbad")
}
func TestInterproceduralPassesCleanCode(t *testing.T) {
	checkFixtureSuite(t, []*Analyzer{SyncCheck, LockCheck, CollectiveCheck}, "interclean")
}

func TestDeadlockCheckFlagsSeededViolations(t *testing.T) {
	checkFixture(t, DeadlockCheck, "deadbad")
}
func TestDeadlockCheckPassesCleanCode(t *testing.T) { checkFixture(t, DeadlockCheck, "deadclean") }

// keyshadow is the regression fixture for the statVars shadowing fix: Stat
// bindings are keyed by object identity, so a shadowed inner binding must
// not corrupt the outer lock's path tracking.
func TestLockCheckStatShadowingRegression(t *testing.T) { checkFixture(t, LockCheck, "keyshadow") }

func TestAllAnalyzersRegistered(t *testing.T) {
	names := map[string]bool{}
	for _, a := range All() {
		if a.Name == "" || a.Doc == "" || a.Run == nil {
			t.Errorf("analyzer %+v incompletely declared", a)
		}
		if names[a.Name] {
			t.Errorf("duplicate analyzer name %q", a.Name)
		}
		names[a.Name] = true
	}
	for _, want := range []string{"synccheck", "lockcheck", "collectivecheck", "symcheck", "deadlockcheck"} {
		if !names[want] {
			t.Errorf("missing analyzer %q", want)
		}
	}
}

// TestLoaderLoadsRepoPackages checks the source loader against the real
// module: the shmem package must type-check without errors through the chain
// importer (module-local source + stdlib source importer).
func TestLoaderLoadsRepoPackages(t *testing.T) {
	l, err := NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	if l.ModulePath() != "cafshmem" {
		t.Fatalf("module path = %q, want cafshmem", l.ModulePath())
	}
	pkg, err := l.Load(l.ModuleRoot() + "/internal/shmem")
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range pkg.TypeErrs {
		t.Errorf("type error in internal/shmem: %v", e)
	}
	if pkg.Path != "cafshmem/internal/shmem" {
		t.Errorf("path = %q", pkg.Path)
	}
	if countFuncBodies(pkg) == 0 {
		t.Error("no function bodies found")
	}
}

// TestRepoPackagesAreVetClean runs the full suite over the packages shmemvet
// gates in tier-1; the repo must be clean so the gate can require exit 0.
func TestRepoPackagesAreVetClean(t *testing.T) {
	l, err := NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	var pkgs []*Package
	for _, rel := range []string{
		"internal/shmem", "internal/caf", "internal/pgasbench", "internal/dht",
	} {
		pkg, err := l.Load(l.ModuleRoot() + "/" + rel)
		if err != nil {
			t.Fatalf("loading %s: %v", rel, err)
		}
		pkgs = append(pkgs, pkg)
	}
	prog := NewProgram(l)
	for _, pkg := range pkgs {
		for _, d := range RunAnalyzers(prog, pkg, All()) {
			t.Errorf("unexpected finding in %s: %s", pkg.Path, d)
		}
	}
}

func TestDiagnosticString(t *testing.T) {
	d := Diagnostic{Analyzer: "synccheck", Message: "boom"}
	d.Pos.Filename, d.Pos.Line, d.Pos.Column = "x.go", 3, 7
	if got := d.String(); !strings.HasPrefix(got, "x.go:3:7: synccheck: boom") {
		t.Errorf("String() = %q", got)
	}
}
