package analysis

import (
	"go/ast"
	"go/types"
)

// SymCheck polices the lifecycle of symmetric-heap handles (shmem.Sym).
// A Sym is only meaningful as the result of a collective Malloc in the world
// that performed it: the same offset names the same object on every PE
// precisely because every PE allocated it together (paper §IV-A). Therefore:
//
//   - constructing a Sym by hand ({Off: ..., Size: ...}) outside the shmem
//     package forges an un-allocated handle; puts through it scribble over
//     whatever the allocator placed there. Runtime layers that legitimately
//     need a whole-partition view (the CAF transport) carry a
//     "//shmemvet:allow symcheck" annotation;
//   - mutating a handle's Off/Size fields retargets it in uncontrolled ways
//     (Sym.At is the bounds-checked way to address within an object);
//   - storing a Sym (or any value embedding one) in package-level state lets
//     the handle outlive and escape its world — a later world's heap will
//     assign the same offsets to different objects.
var SymCheck = &Analyzer{
	Name: "symcheck",
	Doc:  "hand-forged, mutated, or world-escaping symmetric handles",
	Run:  runSymCheck,
}

func runSymCheck(pass *Pass) {
	if pass.Pkg.Types != nil && pass.Pkg.Types.Path() == shmemPath {
		return // the defining package owns the representation
	}
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.CompositeLit:
				if isSymType(pass.typeOf(x)) {
					pass.Reportf(x.Pos(),
						"symmetric handle constructed by hand; Sym values must come from a collective Malloc in this world")
				}
			case *ast.AssignStmt:
				for _, lhs := range x.Lhs {
					sel, ok := ast.Unparen(lhs).(*ast.SelectorExpr)
					if !ok {
						continue
					}
					if (sel.Sel.Name == "Off" || sel.Sel.Name == "Size") && isSymType(pass.typeOf(sel.X)) {
						pass.Reportf(lhs.Pos(),
							"mutation of symmetric handle field %s retargets the handle; address within an object via Sym.At",
							sel.Sel.Name)
					}
				}
			}
			return true
		})
		// Package-level state holding a Sym outlives the world that allocated
		// it.
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for _, name := range vs.Names {
					obj := pass.Pkg.Info.ObjectOf(name)
					if v, ok := obj.(*types.Var); ok && typeEmbedsSym(v.Type(), 0) {
						pass.Reportf(name.Pos(),
							"package-level %s holds a symmetric handle, which escapes the world that allocated it", name.Name)
					}
				}
			}
		}
	}
}

func (p *Pass) typeOf(e ast.Expr) types.Type {
	if tv, ok := p.Pkg.Info.Types[e]; ok {
		return tv.Type
	}
	return nil
}

func isSymType(t types.Type) bool {
	if t == nil {
		return false
	}
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Sym" && obj.Pkg() != nil && obj.Pkg().Path() == shmemPath
}

// typeEmbedsSym reports whether t is, or structurally contains, a shmem.Sym.
func typeEmbedsSym(t types.Type, depth int) bool {
	if t == nil || depth > 6 {
		return false
	}
	if isSymType(t) {
		return true
	}
	switch x := t.(type) {
	case *types.Pointer:
		return typeEmbedsSym(x.Elem(), depth+1)
	case *types.Slice:
		return typeEmbedsSym(x.Elem(), depth+1)
	case *types.Array:
		return typeEmbedsSym(x.Elem(), depth+1)
	case *types.Map:
		return typeEmbedsSym(x.Elem(), depth+1) || typeEmbedsSym(x.Key(), depth+1)
	case *types.Chan:
		return typeEmbedsSym(x.Elem(), depth+1)
	case *types.Named:
		return typeEmbedsSym(x.Underlying(), depth+1)
	case *types.Struct:
		for i := 0; i < x.NumFields(); i++ {
			if typeEmbedsSym(x.Field(i).Type(), depth+1) {
				return true
			}
		}
	}
	return false
}
