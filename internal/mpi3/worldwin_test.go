package mpi3

import (
	"testing"

	"cafshmem/internal/pgas"
)

// WorldWin spans the whole partition as one window (the DART-MPI idiom a
// PGAS runtime layered on MPI-3 RMA uses): process-local handle, one shared
// epoch for the job, offsets addressed absolutely.
func TestWorldWinSpansPartition(t *testing.T) {
	err := Run(cfg(), 2, func(pr *Proc) {
		win := pr.World().WorldWin()
		if win.Off() != 0 || win.Size() != pgas.MaxSegmentBytes {
			t.Errorf("WorldWin = [%d,+%d), want whole partition", win.Off(), win.Size())
		}
		if pr.World().WorldWin() != win {
			t.Error("WorldWin must be a singleton")
		}
		pr.LockAll(win)
		// The world window and an allocated window must not share an epoch
		// key: an epoch on one is not an epoch on the other.
		alloc := pr.WinAllocate(64)
		if alloc.Off() == win.Off() {
			t.Errorf("allocated window offset %d collides with the world window", alloc.Off())
		}
		if pr.Rank() == 0 {
			pr.Put(win, 1, alloc.Off(), []byte{42})
			pr.Flush(1, win)
		}
		pr.Barrier()
		if pr.Rank() == 1 {
			got := make([]byte, 1)
			pr.Get(win, 1, alloc.Off(), got)
			if got[0] != 42 {
				t.Errorf("world-window get = %d, want 42", got[0])
			}
		}
		pr.UnlockAll(win)
		pr.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
}

// FetchOp generalises Fetch_and_op across the accumulate reductions;
// OpSwap is MPI_REPLACE (fetch old, store new).
func TestFetchOpFlavours(t *testing.T) {
	err := Run(cfg(), 2, func(pr *Proc) {
		win := pr.WinAllocate(8)
		pr.LockAll(win)
		if pr.Rank() == 0 {
			if old := pr.FetchOp(win, 1, 0, pgas.OpSwap, 7); old != 0 {
				t.Errorf("replace fetched %d, want 0", old)
			}
			if old := pr.FetchOp(win, 1, 0, pgas.OpAdd, 5); old != 7 {
				t.Errorf("sum fetched %d, want 7", old)
			}
			if old := pr.FetchOp(win, 1, 0, pgas.OpAnd, 0b1001); old != 12 {
				t.Errorf("band fetched %d, want 12", old)
			}
			if old := pr.FetchOp(win, 1, 0, pgas.OpOr, 0b0010); old != 8 {
				t.Errorf("bor fetched %d, want 8", old)
			}
			if old := pr.FetchOp(win, 1, 0, pgas.OpXor, 0b1111); old != 10 {
				t.Errorf("bxor fetched %d, want 10", old)
			}
			if old := pr.FetchOp(win, 1, 0, pgas.OpSwap, 0); old != 5 {
				t.Errorf("final replace fetched %d, want 5", old)
			}
		}
		pr.UnlockAll(win)
		pr.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
}
