package mpi3

import (
	"encoding/binary"
	"strings"
	"testing"

	"cafshmem/internal/fabric"
)

func cfg() Config {
	return Config{Machine: fabric.Stampede(), Profile: fabric.ProfMV2XMPI3}
}

func TestRunIdentity(t *testing.T) {
	err := Run(cfg(), 4, func(pr *Proc) {
		if pr.Size() != 4 || pr.Rank() < 0 || pr.Rank() >= 4 {
			panic("identity wrong")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := NewWorld(Config{}, 1); err == nil {
		t.Fatal("missing machine should fail")
	}
	if _, err := NewWorld(Config{Machine: fabric.Stampede(), Profile: "x"}, 1); err == nil {
		t.Fatal("unknown profile should fail")
	}
}

func TestWinAllocateCollective(t *testing.T) {
	wins := make([]*Win, 3)
	err := Run(cfg(), 3, func(pr *Proc) {
		wins[pr.Rank()] = pr.WinAllocate(256)
	})
	if err != nil {
		t.Fatal(err)
	}
	if wins[0] != wins[1] || wins[1] != wins[2] {
		t.Fatal("WinAllocate must return the same window on all ranks")
	}
}

func TestPassiveTargetPutGet(t *testing.T) {
	err := Run(cfg(), 3, func(pr *Proc) {
		win := pr.WinAllocate(64)
		if pr.Rank() == 0 {
			pr.Lock(LockShared, 2, win)
			var b [8]byte
			binary.LittleEndian.PutUint64(b[:], 31337)
			pr.Put(win, 2, 16, b[:])
			pr.Flush(2, win)
			pr.Unlock(2, win)
		}
		pr.Barrier()
		if pr.Rank() == 1 {
			pr.Lock(LockShared, 2, win)
			var b [8]byte
			pr.Get(win, 2, 16, b[:])
			if binary.LittleEndian.Uint64(b[:]) != 31337 {
				panic("get did not observe put")
			}
			pr.Unlock(2, win)
		}
		pr.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRMAOutsideEpochPanics(t *testing.T) {
	err := Run(cfg(), 2, func(pr *Proc) {
		win := pr.WinAllocate(8)
		if pr.Rank() == 0 {
			pr.Put(win, 1, 0, []byte{1}) // no Lock
		}
	})
	if err == nil || !strings.Contains(err.Error(), "epoch") {
		t.Fatalf("expected epoch violation, got %v", err)
	}
}

func TestPutBounds(t *testing.T) {
	err := Run(cfg(), 2, func(pr *Proc) {
		win := pr.WinAllocate(8)
		if pr.Rank() == 0 {
			pr.LockAll(win)
			pr.Put(win, 1, 4, []byte{1, 2, 3, 4, 5})
		}
	})
	if err == nil || !strings.Contains(err.Error(), "overflow") {
		t.Fatalf("expected overflow, got %v", err)
	}
}

func TestLockAllFlushAll(t *testing.T) {
	err := Run(cfg(), 4, func(pr *Proc) {
		win := pr.WinAllocate(8 * 4)
		pr.LockAll(win)
		var b [8]byte
		binary.LittleEndian.PutUint64(b[:], uint64(pr.Rank()+1))
		for t := 0; t < pr.Size(); t++ {
			pr.Put(win, t, int64(pr.Rank())*8, b[:])
		}
		pr.FlushAll(win)
		pr.UnlockAll(win)
		pr.Barrier()
		pr.LockAll(win)
		for r := 0; r < pr.Size(); r++ {
			var g [8]byte
			pr.Get(win, pr.Rank(), int64(r)*8, g[:])
			if binary.LittleEndian.Uint64(g[:]) != uint64(r+1) {
				panic("flushed put missing")
			}
		}
		pr.UnlockAll(win)
		pr.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestExclusiveLockSerialises(t *testing.T) {
	err := Run(cfg(), 4, func(pr *Proc) {
		win := pr.WinAllocate(16)
		for i := 0; i < 20; i++ {
			pr.Lock(LockExclusive, 0, win)
			var b [8]byte
			pr.Get(win, 0, 0, b[:])
			v := binary.LittleEndian.Uint64(b[:])
			binary.LittleEndian.PutUint64(b[:], v+1)
			pr.Put(win, 0, 0, b[:])
			pr.Flush(0, win)
			pr.Unlock(0, win)
		}
		pr.Barrier()
		if pr.Rank() == 0 {
			pr.LockAll(win)
			var b [8]byte
			pr.Get(win, 0, 0, b[:])
			if binary.LittleEndian.Uint64(b[:]) != 80 {
				panic("exclusive lock failed to serialise read-modify-write")
			}
			pr.UnlockAll(win)
		}
		pr.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestFenceEpochs(t *testing.T) {
	err := Run(cfg(), 2, func(pr *Proc) {
		win := pr.WinAllocate(8)
		pr.Fence(win)
		if pr.Rank() == 0 {
			var b [8]byte
			binary.LittleEndian.PutUint64(b[:], 5)
			pr.Put(win, 1, 0, b[:])
		}
		pr.Fence(win)
		if pr.Rank() == 1 {
			var b [8]byte
			pr.Get(win, 1, 0, b[:])
			if binary.LittleEndian.Uint64(b[:]) != 5 {
				panic("fence did not complete put")
			}
		}
		pr.Fence(win)
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAtomics(t *testing.T) {
	err := Run(cfg(), 4, func(pr *Proc) {
		win := pr.WinAllocate(16)
		pr.LockAll(win)
		for i := 0; i < 10; i++ {
			pr.Accumulate(win, 0, 0, 1)
		}
		old := pr.FetchAndOp(win, 0, 8, int64(pr.Rank()))
		_ = old
		pr.UnlockAll(win)
		pr.Barrier()
		if pr.Rank() == 0 {
			pr.LockAll(win)
			var b [8]byte
			pr.Get(win, 0, 0, b[:])
			if binary.LittleEndian.Uint64(b[:]) != 40 {
				panic("accumulate lost updates")
			}
			pr.UnlockAll(win)
		}
		pr.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestCompareAndSwap(t *testing.T) {
	err := Run(cfg(), 2, func(pr *Proc) {
		win := pr.WinAllocate(8)
		if pr.Rank() == 0 {
			pr.LockAll(win)
			if old := pr.CompareAndSwap(win, 1, 0, 0, 9); old != 0 {
				panic("cas should succeed from 0")
			}
			if old := pr.CompareAndSwap(win, 1, 0, 0, 11); old != 9 {
				panic("cas should fail against 9")
			}
			pr.UnlockAll(win)
		}
		pr.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestMPIPutCostsMoreThanSHMEM(t *testing.T) {
	// Calibration guard for Fig 2: an 8-byte put+flush round under MPI-3 must
	// cost more virtual time than the equivalent shmem put+quiet.
	mpiProf := fabric.Stampede().MustProfile(fabric.ProfMV2XMPI3)
	shmProf := fabric.Stampede().MustProfile(fabric.ProfMV2XSHMEM)
	mpiCost := mpiProf.PutInjectNs(8, false, 1) + mpiProf.WindowSyncNs + mpiProf.DeliveryNs(false, 1)
	shmCost := shmProf.PutInjectNs(8, false, 1) + shmProf.DeliveryNs(false, 1)
	if mpiCost <= shmCost {
		t.Fatalf("MPI-3 small put (%v) should cost more than SHMEM (%v)", mpiCost, shmCost)
	}
}
