package mpi3

import (
	"fmt"

	"cafshmem/internal/pgas"
)

// Lock opens a passive-target access epoch on win at target
// (MPI_Win_lock). LockExclusive serialises against other exclusive lockers.
func (pr *Proc) Lock(kind LockKind, target int, win *Win) {
	pr.checkTarget(target)
	e := pr.epochFor(win, true)
	if e.targets[target] || e.all {
		panic(fmt.Sprintf("mpi3: rank %d already holds an epoch on target %d", pr.p.ID, target))
	}
	if kind == LockExclusive {
		win.exclMu.Lock()
		e.heldExcl = append(e.heldExcl, target)
	}
	e.targets[target] = true
	pr.p.Clock.Advance(pr.world.prof.OverheadNs + pr.world.prof.WindowSyncNs)
}

// Unlock closes the epoch on target, completing all operations to it
// (MPI_Win_unlock).
func (pr *Proc) Unlock(target int, win *Win) {
	e := pr.epochFor(win, false)
	if e == nil || !e.targets[target] {
		panic(fmt.Sprintf("mpi3: rank %d unlocking target %d without an epoch", pr.p.ID, target))
	}
	pr.flushEpoch(e)
	delete(e.targets, target)
	for i, t := range e.heldExcl {
		if t == target {
			e.heldExcl = append(e.heldExcl[:i], e.heldExcl[i+1:]...)
			win.exclMu.Unlock()
			break
		}
	}
	pr.p.Clock.Advance(pr.world.prof.OverheadNs + pr.world.prof.WindowSyncNs)
}

// LockAll opens a shared epoch on every rank (MPI_Win_lock_all) — the idiom
// one-sided benchmarks (and PGAS runtimes over MPI) use.
func (pr *Proc) LockAll(win *Win) {
	e := pr.epochFor(win, true)
	if e.all {
		panic("mpi3: LockAll on an already-locked window")
	}
	e.all = true
	pr.p.Clock.Advance(pr.world.prof.OverheadNs + pr.world.prof.WindowSyncNs)
}

// UnlockAll closes the shared epoch (MPI_Win_unlock_all).
func (pr *Proc) UnlockAll(win *Win) {
	e := pr.epochFor(win, false)
	if e == nil || !e.all {
		panic("mpi3: UnlockAll without LockAll")
	}
	pr.flushEpoch(e)
	e.all = false
	pr.p.Clock.Advance(pr.world.prof.OverheadNs + pr.world.prof.WindowSyncNs)
}

func (pr *Proc) requireEpoch(e *epoch, target int) {
	if e == nil || (!e.all && !e.targets[target]) {
		panic(fmt.Sprintf("mpi3: RMA to target %d outside an access epoch", target))
	}
}

// Put is MPI_Put: one-sided write into the target's window region. Completion
// (local and remote) requires Flush/Unlock.
func (pr *Proc) Put(win *Win, target int, off int64, data []byte) {
	pr.checkTarget(target)
	if off < 0 || off+int64(len(data)) > win.size {
		panic(fmt.Sprintf("mpi3: put of %d bytes at %d overflows %d-byte window", len(data), off, win.size))
	}
	e := pr.epochFor(win, false)
	pr.requireEpoch(e, target)
	intra, pairs := pr.intra(target), pr.pairs()
	prof := pr.world.prof
	pr.p.Clock.Advance(prof.PutInjectNs(len(data), intra, pairs) + prof.WindowSyncNs)
	vis := pr.p.Clock.Now() + prof.DeliveryNs(intra, pairs)
	pr.world.pw.Write(target, win.off+off, data, vis)
	if vis > e.pendingT {
		e.pendingT = vis
	}
}

// Get is MPI_Get: one-sided read from the target's window region. We model
// it as blocking-on-data (the common implementation behaviour for
// passive-target gets followed immediately by a flush).
func (pr *Proc) Get(win *Win, target int, off int64, dst []byte) {
	pr.checkTarget(target)
	if off < 0 || off+int64(len(dst)) > win.size {
		panic(fmt.Sprintf("mpi3: get of %d bytes at %d overflows %d-byte window", len(dst), off, win.size))
	}
	pr.requireEpoch(pr.epochFor(win, false), target)
	intra, pairs := pr.intra(target), pr.pairs()
	pr.p.Clock.Advance(pr.world.prof.GetNs(len(dst), intra, pairs) + pr.world.prof.WindowSyncNs)
	pr.world.pw.Read(target, win.off+off, dst)
}

// Flush completes all outstanding operations to target (MPI_Win_flush).
func (pr *Proc) Flush(target int, win *Win) {
	e := pr.epochFor(win, false)
	pr.requireEpoch(e, target)
	pr.flushEpoch(e)
}

// FlushAll completes all outstanding operations on the window
// (MPI_Win_flush_all).
func (pr *Proc) FlushAll(win *Win) {
	e := pr.epochFor(win, false)
	if e == nil || (!e.all && len(e.targets) == 0) {
		panic("mpi3: FlushAll outside an access epoch")
	}
	pr.flushEpoch(e)
}

func (pr *Proc) flushEpoch(e *epoch) {
	prof := pr.world.prof
	pr.p.Clock.Advance(prof.OverheadNs + prof.WindowSyncNs)
	pr.p.Clock.MergeAtLeast(e.pendingT)
	e.pendingT = 0
}

// Fence is the active-target MPI_Win_fence: a collective that closes and
// opens an epoch for everyone.
func (pr *Proc) Fence(win *Win) {
	e := pr.epochFor(win, true)
	pr.flushEpoch(e)
	w := pr.world
	n := w.pw.NumPEs()
	pr.p.Barrier(w.prof.BarrierNs(n, w.machine.NodesFor(n)) + w.prof.WindowSyncNs)
	// A fence epoch permits RMA to any target until the next fence.
	e.all = true
}

// Accumulate applies MPI_SUM to a 64-bit word in the target window
// (MPI_Accumulate with MPI_LONG_LONG/MPI_SUM).
func (pr *Proc) Accumulate(win *Win, target int, off int64, v int64) {
	pr.checkTarget(target)
	e := pr.epochFor(win, false)
	pr.requireEpoch(e, target)
	intra, pairs := pr.intra(target), pr.pairs()
	prof := pr.world.prof
	pr.p.Clock.Advance(prof.AtomicRTTNs(intra, pairs) + prof.WindowSyncNs)
	pr.world.pw.RMW64(target, win.off+off, pgas.OpAdd, uint64(v), pr.p.Clock.Now())
}

// FetchAndOp is MPI_Fetch_and_op with MPI_SUM on a 64-bit word.
func (pr *Proc) FetchAndOp(win *Win, target int, off int64, v int64) int64 {
	return int64(pr.FetchOp(win, target, off, pgas.OpAdd, uint64(v)))
}

// FetchOp is MPI_Fetch_and_op with a selectable reduction on a 64-bit word:
// pgas.OpAdd is MPI_SUM, OpAnd/OpOr/OpXor the bitwise MPI ops, and OpSwap is
// MPI_REPLACE (fetch the old value, store the new). All flavours pay the same
// modelled atomic round trip plus the window-synchronisation surcharge.
func (pr *Proc) FetchOp(win *Win, target int, off int64, op pgas.AtomicOp, v uint64) uint64 {
	pr.checkTarget(target)
	pr.requireEpoch(pr.epochFor(win, false), target)
	intra, pairs := pr.intra(target), pr.pairs()
	prof := pr.world.prof
	pr.p.Clock.Advance(prof.AtomicRTTNs(intra, pairs) + prof.WindowSyncNs)
	return pr.world.pw.RMW64(target, win.off+off, op, v, pr.p.Clock.Now())
}

// CompareAndSwap is MPI_Compare_and_swap on a 64-bit word.
func (pr *Proc) CompareAndSwap(win *Win, target int, off int64, expected, desired int64) int64 {
	pr.checkTarget(target)
	pr.requireEpoch(pr.epochFor(win, false), target)
	intra, pairs := pr.intra(target), pr.pairs()
	prof := pr.world.prof
	pr.p.Clock.Advance(prof.AtomicRTTNs(intra, pairs) + prof.WindowSyncNs)
	return int64(pr.world.pw.CompareSwap64(target, win.off+off, uint64(expected), uint64(desired), pr.p.Clock.Now()))
}

func (pr *Proc) checkTarget(t int) {
	if t < 0 || t >= pr.Size() {
		panic(fmt.Sprintf("mpi3: rank %d out of range [0,%d)", t, pr.Size()))
	}
}
