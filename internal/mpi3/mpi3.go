// Package mpi3 implements the slice of MPI-3.0 one-sided communication the
// paper benchmarks OpenSHMEM against (§III, Figs 2-3): window allocation,
// MPI_Put/MPI_Get, passive-target synchronisation (lock/unlock/flush), fence,
// and the atomic accumulate operations.
//
// The modelled cost difference against OpenSHMEM/GASNet is the per-operation
// window-synchronisation bookkeeping (WindowSyncNs) plus generally higher
// injection overhead — matching the paper's observation that MPI-3 RMA
// latency trails both one-sided libraries on the tested systems.
package mpi3

import (
	"fmt"
	"sync"

	"cafshmem/internal/fabric"
	"cafshmem/internal/pgas"
)

// Config selects the modelled platform and MPI implementation.
type Config struct {
	Machine *fabric.Machine
	Profile string
	// Engine/Workers select the pgas execution engine, as in shmem.Config.
	Engine  pgas.Engine
	Workers int
	// BarrierShards configures the world-barrier combining tree
	// (pgas.Options.BarrierShards); 0 selects the automatic layout.
	BarrierShards int
}

// World is one MPI job.
type World struct {
	pw      *pgas.World
	prof    *fabric.CostProfile
	machine *fabric.Machine
	winHeap int64
	heapMu  sync.Mutex

	worldWin     *Win
	worldWinOnce sync.Once
}

// Proc is the per-rank handle.
type Proc struct {
	world  *World
	p      *pgas.PE
	epochs map[int64]*epoch
}

// Run launches an n-rank MPI job and executes body once per rank.
func Run(cfg Config, n int, body func(*Proc)) error {
	w, err := NewWorld(cfg, n)
	if err != nil {
		return err
	}
	return w.pw.Run(func(p *pgas.PE) { body(&Proc{world: w, p: p}) })
}

// NewWorld builds job state without launching ranks.
func NewWorld(cfg Config, n int) (*World, error) {
	if cfg.Machine == nil {
		return nil, fmt.Errorf("mpi3: config needs a machine model")
	}
	prof, err := cfg.Machine.Profile(cfg.Profile)
	if err != nil {
		return nil, err
	}
	pw, err := pgas.NewWorldOpts(cfg.Machine, n, pgas.Options{Engine: cfg.Engine, Workers: cfg.Workers, BarrierShards: cfg.BarrierShards})
	if err != nil {
		return nil, err
	}
	return &World{pw: pw, prof: prof, machine: cfg.Machine, winHeap: 64}, nil
}

// Attach creates the rank handle for a pgas PE (for layered harnesses).
func (w *World) Attach(p *pgas.PE) *Proc { return &Proc{world: w, p: p} }

// PgasWorld exposes the underlying substrate.
func (w *World) PgasWorld() *pgas.World { return w.pw }

// Profile exposes the resolved cost profile (for layered harnesses that
// reason about the modelled WindowSyncNs surcharge).
func (w *World) Profile() *fabric.CostProfile { return w.prof }

// WorldWin returns the window spanning each rank's entire partition. It is
// what a PGAS runtime layered over MPI-3 RMA (DART-MPI style) uses: one
// MPI_Win_create over the whole symmetric heap at startup, so coarray puts
// and gets never re-negotiate window handles. The handle is a process-local
// singleton — no collective call, no clock cost — because the window covers
// memory the job already owns; epoch discipline still applies per rank.
func (w *World) WorldWin() *Win {
	w.worldWinOnce.Do(func() {
		w.worldWin = &Win{world: w, off: 0, size: pgas.MaxSegmentBytes}
	})
	return w.worldWin
}

// Pgas exposes the rank's underlying PE (for layered harnesses that manage
// their own heap or local stores alongside the MPI windows).
func (pr *Proc) Pgas() *pgas.PE { return pr.p }

// World returns the job this rank belongs to.
func (pr *Proc) World() *World { return pr.world }

// Rank returns the calling process's rank (MPI_Comm_rank).
func (pr *Proc) Rank() int { return pr.p.ID }

// Size returns the job size (MPI_Comm_size).
func (pr *Proc) Size() int { return pr.world.pw.NumPEs() }

// Clock exposes the virtual clock for harness measurement.
func (pr *Proc) Clock() *fabric.Clock { return &pr.p.Clock }

// Barrier is MPI_Barrier.
func (pr *Proc) Barrier() {
	w := pr.world
	n := w.pw.NumPEs()
	pr.p.Barrier(w.prof.BarrierNs(n, w.machine.NodesFor(n)))
}

func (pr *Proc) intra(t int) bool { return pr.world.machine.SameNode(pr.p.ID, t) }
func (pr *Proc) pairs() int       { return pr.world.pw.ActivePairs(pr.p.ID) }

// LockKind is the MPI_Win_lock type.
type LockKind int

const (
	LockShared LockKind = iota
	LockExclusive
)

// Win is an RMA window: a per-rank region exposed for one-sided access.
type Win struct {
	world *World
	off   int64
	size  int64

	exclMu sync.Mutex // backs MPI_LOCK_EXCLUSIVE
}

// epoch tracks this rank's access epoch on a window.
type epoch struct {
	targets  map[int]bool
	all      bool
	pendingT float64
	heldExcl []int
}

// WinAllocate collectively creates a window of size bytes per rank
// (MPI_Win_allocate). Every rank must call it; all receive the same handle.
func (pr *Proc) WinAllocate(size int64) *Win {
	if size < 0 {
		panic("mpi3: negative window size")
	}
	w := pr.world
	pr.Barrier()
	shared := w.pw.Shared("mpi3.winalloc", func() interface{} { return &sync.Map{} }).(*sync.Map)
	if pr.p.ID == 0 {
		w.heapMu.Lock()
		off := w.winHeap
		sz := (size + 63) &^ 63
		w.winHeap += sz
		w.heapMu.Unlock()
		shared.Store("cur", &Win{world: w, off: off, size: size})
	}
	pr.Barrier()
	v, _ := shared.Load("cur")
	win := v.(*Win)
	pr.Barrier()
	return win
}

// Off returns the window's base offset within each rank's partition (the
// simulator's stand-in for the window base address MPI_Win_allocate returns).
func (win *Win) Off() int64 { return win.off }

// Size returns the window's per-rank extent in bytes.
func (win *Win) Size() int64 { return win.size }

// epochs are tracked per (proc, win) pair in a per-proc map.
var epochKey = func(win *Win) int64 { return win.off }

func (pr *Proc) epochFor(win *Win, create bool) *epoch {
	if pr.epochs == nil {
		if !create {
			return nil
		}
		pr.epochs = map[int64]*epoch{}
	}
	e := pr.epochs[epochKey(win)]
	if e == nil && create {
		e = &epoch{targets: map[int]bool{}}
		pr.epochs[epochKey(win)] = e
	}
	return e
}
