package mpi3

import (
	"strings"
	"testing"
)

// Negative-path coverage for the MPI-3 RMA epoch discipline.

func TestUnlockWithoutLockPanics(t *testing.T) {
	err := Run(cfg(), 2, func(pr *Proc) {
		win := pr.WinAllocate(8)
		if pr.Rank() == 0 {
			pr.Unlock(1, win)
		}
	})
	if err == nil || !strings.Contains(err.Error(), "epoch") {
		t.Fatalf("expected epoch violation, got %v", err)
	}
}

func TestDoubleLockAllPanics(t *testing.T) {
	err := Run(cfg(), 1, func(pr *Proc) {
		win := pr.WinAllocate(8)
		pr.LockAll(win)
		pr.LockAll(win)
	})
	if err == nil {
		t.Fatal("double LockAll should panic")
	}
}

func TestUnlockAllWithoutLockAllPanics(t *testing.T) {
	err := Run(cfg(), 1, func(pr *Proc) {
		win := pr.WinAllocate(8)
		pr.UnlockAll(win)
	})
	if err == nil {
		t.Fatal("UnlockAll without LockAll should panic")
	}
}

func TestDoubleLockSameTargetPanics(t *testing.T) {
	err := Run(cfg(), 2, func(pr *Proc) {
		win := pr.WinAllocate(8)
		if pr.Rank() == 0 {
			pr.Lock(LockShared, 1, win)
			pr.Lock(LockShared, 1, win)
		}
	})
	if err == nil {
		t.Fatal("double Lock on one target should panic")
	}
}

func TestFlushAllOutsideEpochPanics(t *testing.T) {
	err := Run(cfg(), 1, func(pr *Proc) {
		win := pr.WinAllocate(8)
		pr.FlushAll(win)
	})
	if err == nil {
		t.Fatal("FlushAll outside an epoch should panic")
	}
}

func TestGetBounds(t *testing.T) {
	err := Run(cfg(), 2, func(pr *Proc) {
		win := pr.WinAllocate(8)
		if pr.Rank() == 0 {
			pr.LockAll(win)
			dst := make([]byte, 16)
			pr.Get(win, 1, 0, dst)
		}
	})
	if err == nil || !strings.Contains(err.Error(), "overflow") {
		t.Fatalf("expected window overflow, got %v", err)
	}
}

func TestNegativeWindowPanics(t *testing.T) {
	err := Run(cfg(), 1, func(pr *Proc) {
		pr.WinAllocate(-8)
	})
	if err == nil {
		t.Fatal("negative window size should panic")
	}
}

func TestTargetRangeChecked(t *testing.T) {
	err := Run(cfg(), 2, func(pr *Proc) {
		win := pr.WinAllocate(8)
		pr.LockAll(win)
		if pr.Rank() == 0 {
			pr.Put(win, 7, 0, []byte{1})
		}
	})
	if err == nil || !strings.Contains(err.Error(), "out of range") {
		t.Fatalf("expected rank range panic, got %v", err)
	}
}
