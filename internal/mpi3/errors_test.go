package mpi3

import (
	"strings"
	"testing"

	"cafshmem/internal/pgas"
)

// Negative-path coverage for the MPI-3 RMA epoch discipline.

func TestUnlockWithoutLockPanics(t *testing.T) {
	err := Run(cfg(), 2, func(pr *Proc) {
		win := pr.WinAllocate(8)
		if pr.Rank() == 0 {
			pr.Unlock(1, win)
		}
	})
	if err == nil || !strings.Contains(err.Error(), "epoch") {
		t.Fatalf("expected epoch violation, got %v", err)
	}
}

func TestDoubleLockAllPanics(t *testing.T) {
	err := Run(cfg(), 1, func(pr *Proc) {
		win := pr.WinAllocate(8)
		pr.LockAll(win)
		pr.LockAll(win)
	})
	if err == nil {
		t.Fatal("double LockAll should panic")
	}
}

func TestUnlockAllWithoutLockAllPanics(t *testing.T) {
	err := Run(cfg(), 1, func(pr *Proc) {
		win := pr.WinAllocate(8)
		pr.UnlockAll(win)
	})
	if err == nil {
		t.Fatal("UnlockAll without LockAll should panic")
	}
}

func TestDoubleLockSameTargetPanics(t *testing.T) {
	err := Run(cfg(), 2, func(pr *Proc) {
		win := pr.WinAllocate(8)
		if pr.Rank() == 0 {
			pr.Lock(LockShared, 1, win)
			pr.Lock(LockShared, 1, win)
		}
	})
	if err == nil {
		t.Fatal("double Lock on one target should panic")
	}
}

func TestFlushAllOutsideEpochPanics(t *testing.T) {
	err := Run(cfg(), 1, func(pr *Proc) {
		win := pr.WinAllocate(8)
		pr.FlushAll(win)
	})
	if err == nil {
		t.Fatal("FlushAll outside an epoch should panic")
	}
}

func TestGetBounds(t *testing.T) {
	err := Run(cfg(), 2, func(pr *Proc) {
		win := pr.WinAllocate(8)
		if pr.Rank() == 0 {
			pr.LockAll(win)
			dst := make([]byte, 16)
			pr.Get(win, 1, 0, dst)
		}
	})
	if err == nil || !strings.Contains(err.Error(), "overflow") {
		t.Fatalf("expected window overflow, got %v", err)
	}
}

func TestNegativeWindowPanics(t *testing.T) {
	err := Run(cfg(), 1, func(pr *Proc) {
		pr.WinAllocate(-8)
	})
	if err == nil {
		t.Fatal("negative window size should panic")
	}
}

func TestTargetRangeChecked(t *testing.T) {
	err := Run(cfg(), 2, func(pr *Proc) {
		win := pr.WinAllocate(8)
		pr.LockAll(win)
		if pr.Rank() == 0 {
			pr.Put(win, 7, 0, []byte{1})
		}
	})
	if err == nil || !strings.Contains(err.Error(), "out of range") {
		t.Fatalf("expected rank range panic, got %v", err)
	}
}

// TestErrorPathsTable sweeps the epoch-discipline and bounds violations the
// individual tests above leave uncovered: every RMA flavour outside an
// epoch, flush/unlock against the wrong target, negative offsets, and
// atomics on out-of-range ranks. Rank 0 triggers the violation inside a
// fresh 2-rank job; the panic must surface through Run as an error carrying
// the expected fragment.
func TestErrorPathsTable(t *testing.T) {
	cases := []struct {
		name string
		want string
		body func(pr *Proc, win *Win)
	}{
		{"get outside epoch", "outside an access epoch",
			func(pr *Proc, win *Win) { pr.Get(win, 1, 0, make([]byte, 4)) }},
		{"accumulate outside epoch", "outside an access epoch",
			func(pr *Proc, win *Win) { pr.Accumulate(win, 1, 0, 1) }},
		{"fetch-and-op outside epoch", "outside an access epoch",
			func(pr *Proc, win *Win) { pr.FetchAndOp(win, 1, 0, 1) }},
		{"fetch-op outside epoch", "outside an access epoch",
			func(pr *Proc, win *Win) { pr.FetchOp(win, 1, 0, pgas.OpSwap, 1) }},
		{"compare-and-swap outside epoch", "outside an access epoch",
			func(pr *Proc, win *Win) { pr.CompareAndSwap(win, 1, 0, 0, 1) }},
		{"flush outside epoch", "outside an access epoch",
			func(pr *Proc, win *Win) { pr.Flush(1, win) }},
		{"flush wrong target", "outside an access epoch",
			func(pr *Proc, win *Win) { pr.Lock(LockShared, 0, win); pr.Flush(1, win) }},
		{"unlock wrong target", "without an epoch",
			func(pr *Proc, win *Win) { pr.Lock(LockShared, 0, win); pr.Unlock(1, win) }},
		{"lock after lockall", "already holds an epoch",
			func(pr *Proc, win *Win) { pr.LockAll(win); pr.Lock(LockShared, 1, win) }},
		{"put negative offset", "overflows",
			func(pr *Proc, win *Win) { pr.LockAll(win); pr.Put(win, 1, -1, []byte{1}) }},
		{"get negative offset", "overflows",
			func(pr *Proc, win *Win) { pr.LockAll(win); pr.Get(win, 1, -1, make([]byte, 1)) }},
		{"put overflow", "overflows",
			func(pr *Proc, win *Win) { pr.LockAll(win); pr.Put(win, 1, 12, make([]byte, 8)) }},
		{"lock target out of range", "out of range",
			func(pr *Proc, win *Win) { pr.Lock(LockShared, 5, win) }},
		{"atomic target out of range", "out of range",
			func(pr *Proc, win *Win) { pr.LockAll(win); pr.FetchOp(win, -1, 0, pgas.OpAdd, 1) }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := Run(cfg(), 2, func(pr *Proc) {
				win := pr.WinAllocate(16)
				if pr.Rank() == 0 {
					tc.body(pr, win)
				}
			})
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("want error containing %q, got %v", tc.want, err)
			}
		})
	}
}
