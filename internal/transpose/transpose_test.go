package transpose

import (
	"testing"

	"cafshmem/internal/caf"
	"cafshmem/internal/fabric"
)

func TestColRangeCoversMatrix(t *testing.T) {
	for _, tc := range []struct{ n, images int }{{10, 3}, {16, 4}, {7, 7}, {9, 2}} {
		prev := 0
		for m := 1; m <= tc.images; m++ {
			lo, hi := colRange(tc.n, tc.images, m)
			if lo != prev {
				t.Fatalf("n=%d images=%d: gap at image %d", tc.n, tc.images, m)
			}
			if hi < lo {
				t.Fatalf("negative range")
			}
			prev = hi
		}
		if prev != tc.n {
			t.Fatalf("n=%d images=%d: columns not covered (%d)", tc.n, tc.images, prev)
		}
	}
}

func TestTransposeCorrectAllAlgorithms(t *testing.T) {
	// The transpose self-verifies inside Run; a pass means every element
	// landed where the analytic transpose says.
	for _, algo := range []caf.StridedAlgo{caf.StridedNaive, caf.StridedOneDim, caf.Strided2Dim, caf.StridedBestDim} {
		o := caf.UHCAFOverCraySHMEM(fabric.CrayXC30())
		o.Strided = algo
		if _, err := Run(o, 4, Plan{N: 12}); err != nil {
			t.Fatalf("algo %v: %v", algo, err)
		}
	}
}

func TestTransposeBothTransports(t *testing.T) {
	st := fabric.Stampede()
	for _, o := range []caf.Options{
		caf.UHCAFOverMV2XSHMEM(),
		caf.UHCAFOverGASNet(st, fabric.ProfGASNetIBV),
	} {
		if _, err := Run(o, 3, Plan{N: 10}); err != nil {
			t.Fatalf("%s: %v", o.Profile, err)
		}
	}
}

func TestTransposeUnevenDistribution(t *testing.T) {
	// 13 columns over 5 images: 3+3+3+2+2.
	if _, err := Run(caf.UHCAFOverMV2XSHMEM(), 5, Plan{N: 13}); err != nil {
		t.Fatal(err)
	}
}

func TestTransposeSingleImage(t *testing.T) {
	if _, err := Run(caf.UHCAFOverMV2XSHMEM(), 1, Plan{N: 8}); err != nil {
		t.Fatal(err)
	}
}

func TestTransposeValidation(t *testing.T) {
	if _, err := Run(caf.UHCAFOverMV2XSHMEM(), 2, Plan{N: 0}); err == nil {
		t.Fatal("zero-size matrix should fail")
	}
	if _, err := Run(caf.UHCAFOverMV2XSHMEM(), 9, Plan{N: 4}); err == nil {
		t.Fatal("more images than columns should fail")
	}
}

func TestTransposeTimingSane(t *testing.T) {
	r, err := Run(caf.UHCAFOverCraySHMEM(fabric.CrayXC30()), 4, Plan{N: 64})
	if err != nil {
		t.Fatal(err)
	}
	if r.TimeMs <= 0 || r.MBps <= 0 {
		t.Fatalf("timing not populated: %+v", r)
	}
}
