// Package transpose implements a distributed 2-D matrix transpose over the
// CAF runtime — the communication pattern (all-to-all exchanges of
// rectangular array sections) that multi-dimensional strided transfer
// algorithms like the paper's 2dim_strided exist to serve. Each image owns a
// block of columns; transposition makes every image exchange a sub-block
// with every other image, writing rectangular coarray sections remotely.
package transpose

import (
	"fmt"

	"cafshmem/internal/caf"
)

// Plan describes one distributed transpose: an n x n matrix of float64,
// block-column distributed over the images.
type Plan struct {
	N int
}

// colRange returns the half-open global column range owned by image
// (1-based) under block distribution.
func colRange(n, images, image int) (lo, hi int) {
	base := n / images
	rem := n % images
	idx := image - 1
	lo = idx*base + minInt(idx, rem)
	hi = lo + base
	if idx < rem {
		hi++
	}
	return lo, hi
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func maxCols(n, images int) int {
	lo, hi := colRange(n, images, 1)
	return hi - lo
}

// Result carries the outcome of a distributed transpose benchmark run.
type Result struct {
	Images int
	N      int
	TimeMs float64 // virtual time of the slowest image
	MBps   float64 // matrix bytes moved per virtual second
}

// Run transposes a deterministic test matrix (A[r,c] = r*N + c) in place
// across the images, verifies the result against the analytic transpose, and
// returns timing. It is both a correctness harness and a strided-algorithm
// benchmark (the Options select naive/1dim/2dim/vendor).
func Run(opts caf.Options, images int, plan Plan) (Result, error) {
	n := plan.N
	if n < 1 {
		return Result{}, fmt.Errorf("transpose: matrix size must be positive, got %d", n)
	}
	if images > n {
		return Result{}, fmt.Errorf("transpose: %d images exceed %d columns", images, n)
	}
	res := Result{Images: images, N: n}
	var worst float64
	err := caf.Run(images, opts, func(img *caf.Image) {
		me := img.ThisImage()
		lo, hi := colRange(n, images, me)
		mc := maxCols(n, images)

		// A and B are (n rows, mc columns) coarrays, column-major: a column
		// is contiguous. Image me uses columns [0, hi-lo).
		a := caf.Allocate[float64](img, n, mc)
		b := caf.Allocate[float64](img, n, mc)

		// Initialise A[r, c] = r*n + c for owned global columns.
		vals := make([]float64, n*(hi-lo))
		for c := lo; c < hi; c++ {
			for r := 0; r < n; r++ {
				vals[(c-lo)*n+r] = float64(r*n + c)
			}
		}
		a.Put(me, caf.Section{{Lo: 0, Hi: n - 1, Step: 1}, {Lo: 0, Hi: hi - lo - 1, Step: 1}}, vals)
		img.SyncAll()
		img.Clock().Reset()

		// For each target image t: the sub-block of my A with rows in t's
		// column range becomes (transposed) columns [lo, hi) rows [t.lo,t.hi)
		// of B on image t.
		myCols := hi - lo
		for off := 0; off < images; off++ {
			t := (me-1+off)%images + 1 // rotate targets to avoid hotspots
			tlo, thi := colRange(n, images, t)
			rows := thi - tlo
			// Gather my sub-block transposed: buf[(c-lo) ... ] in the section
			// order of the destination (rows fastest).
			buf := make([]float64, rows*myCols)
			src := a.Get(me, caf.Section{
				{Lo: tlo, Hi: thi - 1, Step: 1},
				{Lo: 0, Hi: myCols - 1, Step: 1},
			}) // dense: r fastest (rows of A), then c
			// Transpose locally: destination wants B[gcol, c'-tlo]? Dest
			// section rows = my global columns (lo..hi), dest cols = t's
			// columns (as local 0..rows-1). Element (gr, gc) of A lands at
			// (gc, gr) of B: B row index = gc in [lo,hi), B col = gr-tlo.
			for ri := 0; ri < rows; ri++ { // gr = tlo + ri
				for ci := 0; ci < myCols; ci++ { // gc = lo + ci
					buf[ci+ri*myCols] = src[ri+ci*rows]
				}
			}
			b.Put(t, caf.Section{
				{Lo: lo, Hi: hi - 1, Step: 1},
				{Lo: 0, Hi: rows - 1, Step: 1},
			}, buf)
		}
		img.SyncAll()
		if me == 1 {
			worst = img.Clock().Now()
		}

		// Verify: B[r, c_local] must equal A^T, i.e. value c_global*n + r.
		got := b.Get(me, caf.Section{{Lo: 0, Hi: n - 1, Step: 1}, {Lo: 0, Hi: hi - lo - 1, Step: 1}})
		for c := lo; c < hi; c++ {
			for r := 0; r < n; r++ {
				want := float64(c*n + r)
				if got[(c-lo)*n+r] != want {
					panic(fmt.Sprintf("transpose: image %d B[%d,%d] = %v, want %v",
						me, r, c, got[(c-lo)*n+r], want))
				}
			}
		}
		img.SyncAll()
	})
	if err != nil {
		return res, err
	}
	res.TimeMs = worst / 1e6
	bytes := float64(n) * float64(n) * 8
	res.MBps = bytes / (worst / 1e9) / 1e6
	return res, nil
}
