#!/bin/sh
# Extended tier-1 gate (see ROADMAP.md): build-and-test plus the repo's
# correctness tooling. Run from the module root.
set -eu

echo "==> go build ./..."
go build ./...

echo "==> go vet ./..."
go vet ./...

echo "==> shmemvet (PGAS static analysis)"
go run ./cmd/shmemvet ./...

echo "==> shmemvet NBI fixtures (quiet-contract positive + clean cases)"
go test -run 'TestSyncCheck(FlagsNBIViolations|PassesCleanNBICode)' -count=1 ./internal/analysis

echo "==> shmemvet context fixtures (per-context completion positive + clean cases)"
go test -run 'TestSyncCheck(FlagsCtxViolations|PassesCleanCtxCode)' -count=1 ./internal/analysis

echo "==> go test -race -count=1 ./..."
go test -race -count=1 ./...

echo "==> go test -shuffle=on -count=1 ./... (order-independence)"
go test -shuffle=on -count=1 ./...

echo "==> fuzz smoke (paged segment store vs dense reference, 10s)"
go test -run '^$' -fuzz '^FuzzSegStore$' -fuzztime 10s ./internal/pgas

echo "==> overlap smoke (put_nbi hides transfer; Himeno overlap beats blocking)"
go test -run 'TestOverlapMicroHidesTransfer' -count=1 ./internal/pgasbench
go test -run 'TestOverlapFasterOnAllMachines' -count=1 ./internal/himeno

echo "==> signal smoke (barrier-free Himeno beats the barrier-paced overlap)"
go test -run 'TestSignalOverlapFasterThanBarrierOverlap' -count=1 ./internal/himeno

echo "==> wall-clock bench smoke (one iteration per benchmark, incl. Himeno overlap)"
go test -run '^$' -bench '^BenchmarkWallclock' -benchtime 1x .

echo "==> benchreport alloc-regression gate"
go run ./cmd/benchreport -check

echo "check.sh: all gates passed"
