#!/bin/sh
# Extended tier-1 gate (see ROADMAP.md): build-and-test plus the repo's
# correctness tooling. Run from the module root.
set -eu

echo "==> go build ./..."
go build ./...

echo "==> go vet ./..."
go vet ./...

echo "==> shmemvet (PGAS static analysis; exit code gates, JSON artifact kept)"
# The run is budgeted: the interprocedural pass over the whole module must
# stay interactive (the baseline is ~2s; 60s leaves headroom for cold
# build caches) or the gate fails even if no findings are reported.
san_start=$(date +%s)
go run ./cmd/shmemvet -json ./... > shmemvet.json
san_elapsed=$(( $(date +%s) - san_start ))
echo "    shmemvet clean in ${san_elapsed}s (artifact: shmemvet.json)"
if [ "$san_elapsed" -gt 60 ]; then
    echo "check.sh: shmemvet took ${san_elapsed}s, budget is 60s" >&2
    exit 1
fi

echo "==> analyzer self-tests (all fixtures incl. interprocedural, shuffled)"
go test -shuffle=on -count=1 ./internal/analysis

echo "==> go test -race -count=1 ./..."
go test -race -count=1 ./...

echo "==> go test -shuffle=on -count=1 ./... (order-independence)"
go test -shuffle=on -count=1 ./...

echo "==> fuzz smoke (paged segment store vs dense reference, 10s)"
go test -run '^$' -fuzz '^FuzzSegStore$' -fuzztime 10s ./internal/pgas

echo "==> overlap smoke (put_nbi hides transfer; Himeno overlap beats blocking)"
go test -run 'TestOverlapMicroHidesTransfer' -count=1 ./internal/pgasbench
go test -run 'TestOverlapFasterOnAllMachines' -count=1 ./internal/himeno

echo "==> signal smoke (barrier-free Himeno beats the barrier-paced overlap)"
go test -run 'TestSignalOverlapFasterThanBarrierOverlap' -count=1 ./internal/himeno

echo "==> transport conformance (shared battery, per-transport, bounded wall time)"
# Every transport runs the full semantic battery on its own budget, so a
# hang in one backend names that backend instead of stalling the gate.
for tr in shmem gasnet mpi3; do
    timeout 120 go test -run "^TestConformance/${tr}$" -count=1 ./internal/caf/conformance
done

echo "==> transport differential gate (bit-exact blocking paths, pinned divergences)"
timeout 120 go test -run 'TestDifferentialBlockingExact|TestGASNetAtomicDivergenceExact|TestGASNetSignalDivergenceExact|TestMPI3WindowSyncSurchargeExact' -count=1 ./internal/caf/conformance

echo "==> chaos-loss smoke (lossy fabric: retransmit/dup/kill replays, bounded wall time)"
# A retry-exhaustion or watchdog bug would show up as a hang; the timeout
# turns that into a failure instead of a stuck gate.
timeout 120 go test -race -run 'TestChaosLoss|TestRetryExhaustion|TestLossyReplayIdentical' -count=1 ./internal/caf ./internal/shmem

echo "==> loss-free golden gate (nil plan vs loss-free plan: bit-identical virtual times)"
go test -run 'TestLossFreePlanBitIdentical|TestIssueAtMatchesIssue|TestLinkPenaltyWindowBackCompat' -count=1 ./internal/shmem ./internal/fabric

echo "==> engine golden gate (goroutine vs event engine: bit-identical virtual times)"
go test -run 'TestEventEngineMatchesGoroutine' -count=1 ./internal/pgas
go test -run 'TestEngineDifferential' -count=1 ./internal/caf
go test -run 'TestHimenoGoldensOnEventEngine' -count=1 ./internal/himeno

echo "==> event-engine scale smoke (4096 images on the bounded pool, bounded wall time)"
timeout 120 go test -run 'TestEventEngineHimeno4k' -count=1 ./internal/himeno

echo "==> 100k-image event-engine smoke (sharded-barrier panel, 1 iteration, bounded wall time)"
# One 100k barrier row end-to-end: completes watchdog-clean or the timeout
# turns a hang/poison into a failure. ~5s on the reference machine.
timeout 180 go test -run '^$' -bench '^BenchmarkWallclockScale/barrier/n=102400/event$' -benchtime 1x .

echo "==> wall-clock bench smoke (one iteration per benchmark, incl. Himeno overlap)"
# The fixed suite only: the full engine scale sweep (BenchmarkWallclockScale,
# up to 10k images) is benchreport territory, not a smoke.
go test -run '^$' -bench '^BenchmarkWallclock(ContigPut|StridedPut|LockContention|DHT|Himeno|HimenoOverlap|HimenoSignal)$' -benchtime 1x .
go test -run '^$' -bench '^BenchmarkWallclockScale/barrier/n=256' -benchtime 1x .

echo "==> benchreport regression gates (contig-put allocs + BENCH_9.json scale floor + BENCH_10.json transport matrix)"
go run ./cmd/benchreport -check

echo "check.sh: all gates passed"
