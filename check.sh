#!/bin/sh
# Extended tier-1 gate (see ROADMAP.md): build-and-test plus the repo's
# correctness tooling. Run from the module root.
set -eu

echo "==> go build ./..."
go build ./...

echo "==> go vet ./..."
go vet ./...

echo "==> shmemvet (PGAS static analysis)"
go run ./cmd/shmemvet ./...

echo "==> shmemvet NBI fixtures (quiet-contract positive + clean cases)"
go test -run 'TestSyncCheck(FlagsNBIViolations|PassesCleanNBICode)' -count=1 ./internal/analysis

echo "==> go test -race -count=1 ./..."
go test -race -count=1 ./...

echo "==> overlap smoke (put_nbi hides transfer; Himeno overlap beats blocking)"
go test -run 'TestOverlapMicroHidesTransfer' -count=1 ./internal/pgasbench
go test -run 'TestOverlapFasterOnAllMachines' -count=1 ./internal/himeno

echo "==> wall-clock bench smoke (one iteration per benchmark, incl. Himeno overlap)"
go test -run '^$' -bench '^BenchmarkWallclock' -benchtime 1x .

echo "==> benchreport alloc-regression gate"
go run ./cmd/benchreport -check

echo "check.sh: all gates passed"
