#!/bin/sh
# Extended tier-1 gate (see ROADMAP.md): build-and-test plus the repo's
# correctness tooling. Run from the module root.
set -eu

echo "==> go build ./..."
go build ./...

echo "==> go vet ./..."
go vet ./...

echo "==> shmemvet (PGAS static analysis)"
go run ./cmd/shmemvet ./...

echo "==> go test -race -count=1 ./..."
go test -race -count=1 ./...

echo "==> wall-clock bench smoke (one iteration per benchmark)"
go test -run '^$' -bench '^BenchmarkWallclock' -benchtime 1x .

echo "==> benchreport alloc-regression gate"
go run ./cmd/benchreport -check

echo "check.sh: all gates passed"
