package cafshmem

// BenchmarkWallclockScale is the engine sweep: the same two application
// workloads (a blocking-halo Himeno iteration and the disjoint locked-update
// DHT pattern) at 256 / 1k / 4k / 10k images, on both execution engines,
// plus a 100k-image barrier panel on the event engine only (the goroutine
// engine's per-PE stall detectors and O(world) broadcasts make 100k
// impractical there, and 100k is exactly the regime the event engine
// exists for). Two extra metrics make the sweep comparable across sizes and
// engines:
//
//	ns/simop          wall-clock nanoseconds per runtime-issued communication
//	                  operation (caf.Stats.Ops summed over all images) — the
//	                  host cost of simulating one op, independent of how many
//	                  ops a configuration happens to issue
//	peak-goroutines   high-water goroutine count sampled during the run —
//	                  images+O(1) under the goroutine engine, pool+O(1)
//	                  under the event engine
//
// Virtual-time results are engine-independent (the golden and differential
// tests pin that); this benchmark is only about what each engine costs the
// host as the image count grows. cmd/benchreport runs the sweep at
// -benchtime 1x and records it in the scale section of BENCH_9.json.

import (
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"cafshmem/internal/caf"
	"cafshmem/internal/dht"
	"cafshmem/internal/fabric"
	"cafshmem/internal/himeno"
	"cafshmem/internal/pgas"
)

// pollPeakGoroutines samples the process goroutine count until stopped and
// returns the high-water mark (the poller itself included — a constant +1).
func pollPeakGoroutines() (stop func() float64) {
	var peak int64
	done := make(chan struct{})
	finished := make(chan struct{})
	go func() {
		defer close(finished)
		t := time.NewTicker(200 * time.Microsecond)
		defer t.Stop()
		for {
			if g := int64(runtime.NumGoroutine()); g > atomic.LoadInt64(&peak) {
				atomic.StoreInt64(&peak, g)
			}
			select {
			case <-done:
				return
			case <-t.C:
			}
		}
	}()
	return func() float64 {
		close(done)
		<-finished
		return float64(atomic.LoadInt64(&peak))
	}
}

var scaleEngines = []struct {
	name   string
	engine pgas.Engine
}{
	{"goroutine", pgas.EngineGoroutine},
	{"event", pgas.EngineEvent},
}

// scaleGoroutineCap bounds the goroutine engine's sweep: beyond 10k images
// its per-PE machinery dominates the host and the rows stop being
// informative. The event engine runs the full range.
const scaleGoroutineCap = 10240

func BenchmarkWallclockScale(b *testing.B) {
	for _, n := range []int{256, 1024, 4096, 10240, 102400} {
		for _, eng := range scaleEngines {
			n, eng := n, eng
			if n > scaleGoroutineCap && eng.engine == pgas.EngineGoroutine {
				continue
			}
			if n <= scaleGoroutineCap {
				b.Run(fmt.Sprintf("himeno/n=%d/%s", n, eng.name), func(b *testing.B) {
					o := caf.UHCAFOverMV2XSHMEM()
					o.Strided = caf.StridedNaive
					o.Engine = eng.engine
					// One j-plane per image: the footprint stays linear in the
					// image count and every image parks at halo waits/barriers.
					prm := himeno.Params{NX: 8, NY: n, NZ: 8, Iters: 2}
					stop := pollPeakGoroutines()
					var simOps int64
					b.ReportAllocs()
					b.ResetTimer()
					for i := 0; i < b.N; i++ {
						r, err := himeno.Run(o, n, prm)
						if err != nil {
							b.Fatal(err)
						}
						simOps += r.CommOps
					}
					b.StopTimer()
					peak := stop()
					b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(simOps), "ns/simop")
					b.ReportMetric(peak, "peak-goroutines")
				})
			}
			b.Run(fmt.Sprintf("barrier/n=%d/%s", n, eng.name), func(b *testing.B) {
				// Park-dominated panel: every op is one whole-job barrier, so
				// ns/simop isolates what the engine itself charges for a
				// park/wake cycle — payload-heavy panels dilute the scheduler
				// cost with marshalling and timestamp bookkeeping the engines
				// share.
				o := caf.UHCAFOverCraySHMEM(fabric.Titan())
				o.Engine = eng.engine
				// Enough rounds that one-off world construction (goroutine
				// spawns, symmetric-heap setup — identical across engines)
				// amortises out and ns/simop reflects the steady-state
				// park/wake cycle. At 100k images the per-round cost is high
				// enough (and construction proportionally cheaper) that fewer
				// rounds suffice to keep the row's wall-clock bounded.
				rounds := 200
				if n > scaleGoroutineCap {
					rounds = 25
				}
				stop := pollPeakGoroutines()
				var simOps int64
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					err := caf.Run(n, o, func(img *caf.Image) {
						for r := 0; r < rounds; r++ {
							img.Clock().Advance(100)
							img.SyncAll()
						}
					})
					if err != nil {
						b.Fatal(err)
					}
					simOps += int64(n * rounds)
				}
				b.StopTimer()
				peak := stop()
				b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(simOps), "ns/simop")
				b.ReportMetric(peak, "peak-goroutines")
			})
			if n <= scaleGoroutineCap {
				b.Run(fmt.Sprintf("dht/n=%d/%s", n, eng.name), func(b *testing.B) {
					o := caf.UHCAFOverCraySHMEM(fabric.Titan())
					o.Engine = eng.engine
					stop := pollPeakGoroutines()
					var simOps int64
					b.ReportAllocs()
					b.ResetTimer()
					for i := 0; i < b.N; i++ {
						// Disjoint pattern: remote lock + get + put traffic with
						// no contention, deterministic at every size.
						r, err := dht.BenchPattern(o, n, 16, 10, true)
						if err != nil {
							b.Fatal(err)
						}
						simOps += r.CommOps
					}
					b.StopTimer()
					peak := stop()
					b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(simOps), "ns/simop")
					b.ReportMetric(peak, "peak-goroutines")
				})
			}
		}
	}
}
