module cafshmem

go 1.22
